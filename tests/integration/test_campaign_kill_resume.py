"""End-to-end kill/resume determinism: SIGKILL a campaign CLI process
mid-flight, resume from its journal, and require the merged report to be
byte-identical to an uninterrupted run.

The test must pass regardless of kill timing: whether the kill lands
after one task, after all tasks, or the campaign finishes before the
kill, the resumed output never differs from the reference.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

ARGS = ["campaign", "--workloads", "stringbuffer,queue-region",
        "--seeds", "3", "--max-steps", "60000", "--quiet"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run_cli(args):
    return subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=_env(),
                          cwd=REPO, timeout=600)


class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = _run_cli(ARGS)
        # buggy workloads -> violations exit code, with a full report
        assert reference.returncode == 1, reference.stderr
        assert "Campaign: 6 runs" in reference.stdout

        jdir = str(tmp_path / "journal")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro"] + ARGS + ["--journal", jdir],
            env=_env(), cwd=REPO, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        journal = os.path.join(jdir, "journal.jsonl")
        deadline = time.time() + 120
        try:
            # wait until at least one task outcome is journaled (header
            # + 1 record), then pull the trigger
            while time.time() < deadline and victim.poll() is None:
                try:
                    with open(journal, "rb") as fh:
                        if len(fh.read().splitlines()) >= 2:
                            break
                except OSError:
                    pass
                time.sleep(0.02)
        finally:
            if victim.poll() is None:
                os.kill(victim.pid, signal.SIGKILL)
            victim.wait()

        assert os.path.exists(journal), "campaign never created a journal"
        resumed = _run_cli(ARGS + ["--resume", jdir])
        assert resumed.returncode == 1, resumed.stderr
        assert resumed.stdout == reference.stdout

        # resuming the now-complete journal re-runs nothing and still
        # reproduces the identical report
        again = _run_cli(ARGS + ["--resume", jdir, "-j", "2"])
        assert again.returncode == 1
        assert again.stdout == reference.stdout
