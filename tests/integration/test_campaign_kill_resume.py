"""End-to-end kill/resume determinism: SIGKILL a campaign CLI process
mid-flight, resume from its journal, and require the merged report to be
byte-identical to an uninterrupted run.

The test must pass regardless of kill timing: whether the kill lands
after one task, after all tasks, or the campaign finishes before the
kill, the resumed output never differs from the reference.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

ARGS = ["campaign", "--workloads", "stringbuffer,queue-region",
        "--seeds", "3", "--max-steps", "60000", "--quiet"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run_cli(args):
    return subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=_env(),
                          cwd=REPO, timeout=600)


class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = _run_cli(ARGS)
        # buggy workloads -> violations exit code, with a full report
        assert reference.returncode == 1, reference.stderr
        assert "Campaign: 6 runs" in reference.stdout

        jdir = str(tmp_path / "journal")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro"] + ARGS + ["--journal", jdir],
            env=_env(), cwd=REPO, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        journal = os.path.join(jdir, "journal.jsonl")
        deadline = time.time() + 120
        try:
            # wait until at least one task outcome is journaled (header
            # + 1 record), then pull the trigger
            while time.time() < deadline and victim.poll() is None:
                try:
                    with open(journal, "rb") as fh:
                        if len(fh.read().splitlines()) >= 2:
                            break
                except OSError:
                    pass
                time.sleep(0.02)
        finally:
            if victim.poll() is None:
                os.kill(victim.pid, signal.SIGKILL)
            victim.wait()

        assert os.path.exists(journal), "campaign never created a journal"

        # the fsync-then-commit protocol: whatever instant the SIGKILL
        # landed, the commit marker exists and its committed prefix is
        # whole newline-terminated JSON lines -- a torn final append
        # can only ever lie *beyond* the marker
        marker_path = os.path.join(jdir, "journal.commit")
        assert os.path.exists(marker_path), "no commit marker"
        with open(marker_path) as fh:
            marker = json.load(fh)
        assert marker["format"] == "repro-campaign-journal-commit"
        with open(journal, "rb") as fh:
            committed = fh.read(marker["length"])
        assert committed.endswith(b"\n")
        lines = committed.splitlines()
        assert len(lines) == 1 + marker["records"]  # header + records
        for line in lines:
            json.loads(line)

        resumed = _run_cli(ARGS + ["--resume", jdir])
        assert resumed.returncode == 1, resumed.stderr
        assert resumed.stdout == reference.stdout

        # resuming the now-complete journal re-runs nothing and still
        # reproduces the identical report
        again = _run_cli(ARGS + ["--resume", jdir, "-j", "2"])
        assert again.returncode == 1
        assert again.stdout == reference.stdout

        # after a complete run the marker covers the whole journal
        with open(marker_path) as fh:
            final_marker = json.load(fh)
        assert final_marker["length"] == os.path.getsize(journal)
        assert final_marker["records"] == 6
