"""Cross-cutting integration tests for the paper's §7 claims."""

import pytest

from repro.harness import run_workload, table2_rows
from repro.harness.table2 import aggregate_row
from repro.workloads import (apache_log, mysql_prepared, mysql_tablelock,
                             pgsql_oltp, stringbuffer)


@pytest.fixture(scope="module")
def rows():
    return table2_rows(max_steps=300_000)


class TestTable2Shape:
    """The qualitative shape of Table 2 (see DESIGN.md §5)."""

    def test_no_apparent_false_negatives(self, rows):
        for row in rows:
            if row.buggy:
                assert row.apparent_fn == 0, row.program

    def test_bugs_found_by_both_detectors(self, rows):
        for row in rows:
            if row.buggy:
                assert row.bugs_found_svd == row.segments
                assert row.bugs_found_frd == row.segments

    def test_mysql_bugfree_svd_static_fp_below_frd(self, rows):
        row = next(r for r in rows if r.program == "MySQL (bug-free)")
        assert row.svd_static_fp < row.frd_static_fp

    def test_mysql_bugfree_svd_dynamic_fp_below_frd(self, rows):
        row = next(r for r in rows if r.program == "MySQL (bug-free)")
        assert row.svd_dynamic_fp < row.frd_dynamic_fp

    def test_pgsql_crossover(self, rows):
        """PgSQL is the row where SVD reports MORE than FRD."""
        row = next(r for r in rows if r.program == "PgSQL")
        assert row.frd_static_fp == 0
        assert row.svd_static_fp > row.frd_static_fp

    def test_pgsql_absolute_rate_low(self, rows):
        """...but at a low absolute dynamic rate: far below the buggy
        workloads' FRD race rates."""
        pgsql = next(r for r in rows if r.program == "PgSQL")
        apache = next(r for r in rows if r.program == "Apache (buggy)")
        frd_race_rate = (apache.runs[0].frd.dynamic_tp * 1e6
                         / apache.runs[0].instructions)
        assert pgsql.svd_dynfp_per_million() < frd_race_rate

    def test_posteriori_counts_recorded(self, rows):
        for row in rows:
            assert row.posteriori_examinations >= 0
        mysql = next(r for r in rows if r.program == "MySQL (buggy)")
        assert mysql.posteriori_examinations > 0


class TestStringBufferClaim:
    """§2.1: the region hypothesis holds on the JDK StringBuffer bug and
    SVD detects the torn append."""

    def test_svd_detects_torn_append(self):
        workload = stringbuffer()
        detected = False
        for seed in range(6):
            result = run_workload(workload, seed=seed, switch_prob=0.6)
            if result.outcome.manifested:
                detected = detected or result.svd.found_bug
        assert detected

    def test_fixed_stringbuffer_never_tears(self):
        """The patched append never tears.  SVD may still report a few
        strict-2PL-gap false positives (the copied length is used after
        sb2's lock is released -- the same §5.2 FP class the paper sees
        on its patched programs), but they are all false positives."""
        workload = stringbuffer(fixed=True)
        for seed in range(3):
            result = run_workload(workload, seed=seed, switch_prob=0.6)
            assert result.outcome.errors == 0
            assert result.svd.dynamic_tp == 0


class TestDynamicFpBerArgument:
    """§6: dynamic FPs are proportional to lost work under BER; SVD's
    advantage must hold on the identical executions FRD sees."""

    def test_svd_dynamic_reports_below_frd_on_buggy_runs(self):
        for factory, seeds in ((apache_log, range(3)),
                               (lambda: mysql_prepared(), range(3))):
            for seed in seeds:
                result = run_workload(factory(), seed=seed, switch_prob=0.5)
                if result.frd.dynamic_total:
                    assert (result.svd.dynamic_total
                            <= result.frd.dynamic_total)
