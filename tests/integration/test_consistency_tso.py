"""Integration: TSO-only serializability violations, end to end.

The transactional workloads (:mod:`repro.workloads.txn`) use a
store-buffering flag protocol that is a correct mutual exclusion under
the strict model for *every* schedule, and loses updates under TSO.
These tests pin the whole chain the tentpole promises:

* strict sweeps stay clean, a seeded TSO run manifests the violation;
* one (schedule seed, model seed) pair replays the violation exactly,
  through :class:`~repro.machine.scheduler.ReplayScheduler`;
* the SVD detector reports the violation on the TSO execution;
* the lock-fixed variants stay clean under TSO;
* the conflict-directed hunt finds violations at a strictly better
  per-probe rate than uniform random search.
"""

import pytest

from repro.fuzz.directed import (DirectedScheduler, build_conflict_map,
                                 run_violation_hunt)
from repro.harness import run_workload
from repro.machine import Machine, RandomScheduler, ReplayScheduler, TSOModel
from repro.workloads import TXN_WORKLOADS

STRICT_SWEEP_SEEDS = 60
TSO_SWEEP_SEEDS = 60
MAX_STEPS = 50_000


def _manifested(workload, scheduler, memmodel):
    machine = workload.make_machine(scheduler, record_schedule=True,
                                    memmodel=memmodel)
    machine.run(max_steps=MAX_STEPS)
    return workload.validate(machine), machine


class TestTsoOnlyViolations:
    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS), ids=str)
    def test_strict_sweep_clean(self, name):
        """No schedule manifests the lost update under strict: the flag
        protocol is a correct lock on sequentially consistent memory."""
        for seed in range(STRICT_SWEEP_SEEDS):
            workload = TXN_WORKLOADS[name]()
            outcome, _ = _manifested(
                workload, RandomScheduler(seed=seed, switch_prob=0.4),
                memmodel=None)
            assert not outcome.manifested, (
                f"{name} seed {seed} manifested under strict: "
                f"{outcome.detail}")

    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS), ids=str)
    def test_tso_seed_manifests_and_replays(self, name):
        """Some TSO seed loses an update, and its recorded schedule plus
        model seed reproduce the identical outcome."""
        hit = None
        for seed in range(TSO_SWEEP_SEEDS):
            workload = TXN_WORKLOADS[name]()
            outcome, machine = _manifested(
                workload, RandomScheduler(seed=seed, switch_prob=0.4),
                memmodel=TSOModel(seed=seed))
            if outcome.manifested:
                hit = (seed, outcome, list(machine.recorded_schedule))
                break
        assert hit is not None, f"no TSO violation in {TSO_SWEEP_SEEDS} seeds"
        seed, outcome, schedule = hit

        replay_workload = TXN_WORKLOADS[name]()
        replay_outcome, replayed = _manifested(
            replay_workload, ReplayScheduler(schedule),
            memmodel=TSOModel(seed=seed))
        assert replay_outcome.errors == outcome.errors
        assert replay_outcome.detail == outcome.detail

    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS), ids=str)
    def test_fixed_variant_clean_under_tso(self, name):
        """The lock-based fix is a fencing RMW: correct under TSO for
        every probed seed."""
        for seed in range(20):
            workload = TXN_WORKLOADS[name](fixed=True)
            outcome, _ = _manifested(
                workload, RandomScheduler(seed=seed, switch_prob=0.4),
                memmodel=TSOModel(seed=seed))
            assert not outcome.manifested, (
                f"fixed {name} seed {seed}: {outcome.detail}")


class TestDetectionUnderTso:
    def test_svd_reports_on_manifesting_run(self):
        """The full engine path (``run_workload``) detects the TSO
        violation: the lost update manifests and SVD reports dynamic
        serializability violations on the same execution."""
        for seed in range(TSO_SWEEP_SEEDS):
            result = run_workload(TXN_WORKLOADS["txn-bank"](), seed=seed,
                                  switch_prob=0.4, max_steps=MAX_STEPS,
                                  run_frd=False, consistency="tso",
                                  model_seed=seed)
            if result.outcome.manifested:
                assert result.svd_report.dynamic_count > 0
                return
        pytest.fail(f"no manifesting seed in {TSO_SWEEP_SEEDS}")

    def test_strict_engine_path_unchanged(self):
        """The same engine call under explicit strict matches the
        default-model call, seed for seed."""
        for seed in (0, 1, 2):
            default = run_workload(TXN_WORKLOADS["txn-bank"](), seed=seed,
                                   max_steps=MAX_STEPS, run_frd=False)
            explicit = run_workload(TXN_WORKLOADS["txn-bank"](), seed=seed,
                                    max_steps=MAX_STEPS, run_frd=False,
                                    consistency="strict")
            assert default.outcome.detail == explicit.outcome.detail
            assert default.instructions == explicit.instructions
            assert (default.svd_report.dynamic_count
                    == explicit.svd_report.dynamic_count)


class TestDirectedHunt:
    def test_conflict_map_finds_shared_sites(self):
        pcs = build_conflict_map(TXN_WORKLOADS["txn-bank"]())
        assert pcs  # the flag protocol and balance RMW are conflicts

    def test_directed_scheduler_is_deterministic(self):
        workload = TXN_WORKLOADS["txn-bank"]()
        pcs = build_conflict_map(workload)

        def run_once():
            machine = workload.make_machine(
                DirectedScheduler(seed=5, conflict_pcs=pcs),
                record_schedule=True, memmodel=TSOModel(seed=5))
            machine.run(max_steps=MAX_STEPS)
            return (machine.memory, machine.recorded_schedule)

        first = run_once()
        workload = TXN_WORKLOADS["txn-bank"]()
        assert run_once() == first

    def test_directed_beats_random_per_budget(self):
        """The experiment's headline claim, at test scale: directed
        search yields strictly more violations per probe on every
        transactional workload."""
        for name in sorted(TXN_WORKLOADS):
            workload = TXN_WORKLOADS[name]()
            directed = run_violation_hunt(workload, probes=60,
                                          master_seed=2026, directed=True)
            workload = TXN_WORKLOADS[name]()
            rand = run_violation_hunt(workload, probes=60,
                                      master_seed=2026, directed=False)
            assert directed.rate > rand.rate, (
                f"{name}: directed {directed.rate:.3f} "
                f"<= random {rand.rate:.3f}")

    def test_hunt_hits_replay_exactly(self):
        workload = TXN_WORKLOADS["txn-cart"]()
        result = run_violation_hunt(workload, probes=40, master_seed=2026,
                                    directed=True)
        assert result.hits
        hit = result.hits[0]
        replay_workload = TXN_WORKLOADS["txn-cart"]()
        machine = replay_workload.make_machine(
            ReplayScheduler(hit.schedule),
            memmodel=TSOModel(seed=hit.model_seed))
        machine.run(max_steps=MAX_STEPS)
        outcome = replay_workload.validate(machine)
        assert outcome.errors == hit.errors
        assert outcome.detail == hit.detail

    def test_budget_caps_probes(self):
        workload = TXN_WORKLOADS["txn-bank"]()
        result = run_violation_hunt(workload, probes=10_000,
                                    master_seed=1, directed=False,
                                    budget=0.2)
        assert 0 < result.probes < 10_000
