"""BER end-to-end: SVD-triggered rollback avoids the Apache corruption
and the MySQL crash (the paper's deployment scenario I)."""

import pytest

from repro.ber import BerController
from repro.machine import RandomScheduler
from repro.workloads import apache_log, mysql_prepared


def corrupting_seed(workload, seeds=range(8), switch=0.5):
    """Find a seed whose unprotected run manifests the error."""
    for seed in seeds:
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=switch))
        machine.run(max_steps=400_000)
        if workload.validate(machine).errors:
            return seed
    pytest.fail("no seed manifested the error")


class TestApacheRecovery:
    def test_ber_avoids_log_corruption(self):
        workload = apache_log(writers=3, requests=12)
        seed = corrupting_seed(workload)
        controller = BerController(
            workload.program, workload.threads,
            RandomScheduler(seed=seed, switch_prob=0.5),
            checkpoint_interval=400, recovery_window=1500)
        outcome = controller.run(max_steps=2_000_000)
        assert outcome.rollbacks > 0  # the detector fired and we recovered
        result = workload.validate(controller.machine)
        assert result.errors == 0, result.detail

    def test_wasted_work_tracked(self):
        workload = apache_log(writers=3, requests=12)
        seed = corrupting_seed(workload)
        controller = BerController(
            workload.program, workload.threads,
            RandomScheduler(seed=seed, switch_prob=0.5),
            checkpoint_interval=400, recovery_window=1500)
        outcome = controller.run(max_steps=2_000_000)
        assert outcome.wasted_steps > 0
        assert outcome.overhead_fraction < 0.9


class TestMysqlRecovery:
    def test_ber_reduces_crashes(self):
        """Online SVD only partially covers the Figure 3 bug (the paper
        expects misses there), so BER cannot guarantee crash avoidance --
        but protected runs must crash no more than unprotected ones and
        recovery must engage when detection fires early enough."""
        workload = mysql_prepared(queries=6)
        seed = corrupting_seed(workload, switch=0.4)
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.4))
        machine.run(max_steps=400_000)
        unprotected_crashes = len(machine.crashes)

        controller = BerController(
            workload.program, workload.threads,
            RandomScheduler(seed=seed, switch_prob=0.4),
            checkpoint_interval=400, recovery_window=2000)
        outcome = controller.run(max_steps=2_000_000)
        assert outcome.crashed + outcome.rollbacks >= 0  # ran to completion
        protected_crashes = len(controller.machine.crashes)
        assert protected_crashes <= unprotected_crashes
