"""Figure 9 integration: independent computations in one atomic region.

The queue-fill region's two field stores are not data-dependent on each
other; only the *address dependence* on the dequeued ``head`` connects
them to the region.  The paper's mitigation: SVD checks address
dependences at stores, so the buggy (lock-free) variant is still caught.
"""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.machine import RandomScheduler
from repro.workloads import queue_region


def run_with_config(workload, config, seed, switch=0.6):
    svd = OnlineSVD(workload.program, config)
    machine = workload.make_machine(
        RandomScheduler(seed=seed, switch_prob=switch), observers=[svd])
    machine.run()
    return machine, svd


class TestFigure9:
    def test_buggy_queue_detected_with_address_deps(self):
        workload = queue_region(fixed=False)
        detected = False
        for seed in range(5):
            machine, svd = run_with_config(workload, SvdConfig(), seed)
            if workload.validate(machine).errors:
                detected = detected or svd.report.dynamic_count > 0
        assert detected

    def test_detection_sites_include_field_stores(self):
        """With address dependences, violations fire at q_a/q_b stores,
        not only at the head update."""
        workload = queue_region(fixed=False)
        sites = set()
        for seed in range(6):
            _m, svd = run_with_config(workload, SvdConfig(), seed)
            sites |= {svd.program.locs[v.loc].text for v in svd.report}
        assert any("q_a" in t or "q_b" in t for t in sites)

    def test_without_address_deps_field_stores_silent(self):
        workload = queue_region(fixed=False)
        sites = set()
        for seed in range(6):
            _m, svd = run_with_config(
                workload, SvdConfig(use_address_deps=False), seed)
            sites |= {svd.program.locs[v.loc].text for v in svd.report}
        assert not any("q_a" in t or "q_b" in t for t in sites)

    def test_locked_queue_silent(self):
        workload = queue_region(fixed=True)
        for seed in range(3):
            machine, svd = run_with_config(workload, SvdConfig(), seed)
            assert workload.validate(machine).errors == 0
            assert svd.report.dynamic_count == 0
