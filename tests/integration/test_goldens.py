"""Golden regression pins: exact deterministic results for fixed seeds.

Everything in this library is deterministic given (source, seed,
scheduler), so these tests pin exact numbers.  A failure here means an
intentional behaviour change -- update the goldens deliberately, never
casually: each pinned value is cross-checked by the looser invariant
tests elsewhere, and together they freeze the detector's semantics.
"""

import pytest

from repro.core import OnlineSVD
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from tests.conftest import COUNTER_RACE


def run_counter_race(seed):
    program = compile_source(COUNTER_RACE)
    svd = OnlineSVD(program)
    machine = Machine(program, [("worker", (30,)), ("worker", (30,))],
                      scheduler=RandomScheduler(seed=seed, switch_prob=0.4),
                      observers=[svd])
    machine.run()
    return machine, svd


class TestCounterRaceGoldens:
    def test_seed1_execution(self):
        machine, svd = run_counter_race(1)
        assert machine.read_global("counter") == 46
        assert machine.seq == 1158
        assert svd.report.dynamic_count == 11
        assert svd.report.static_count == 2
        assert svd.cus_created == 58

    def test_seed2_execution(self):
        machine, svd = run_counter_race(2)
        # a different seed, a different interleaving, same determinism
        assert machine.read_global("counter") == \
            run_counter_race(2)[0].read_global("counter")
        assert svd.report.dynamic_count == \
            run_counter_race(2)[1].report.dynamic_count


class TestWorkloadGoldens:
    def test_apache_seed3(self):
        from repro.harness import run_workload
        from repro.workloads import apache_log
        result = run_workload(apache_log(), seed=3, switch_prob=0.3)
        assert result.outcome.errors == 93
        assert result.svd.dynamic_tp == 111
        assert result.svd.dynamic_fp == 0
        assert result.frd.dynamic_tp == 5679

    def test_tablelock_seed1(self):
        from repro.harness import run_workload
        from repro.workloads import mysql_tablelock
        result = run_workload(mysql_tablelock(), seed=1, switch_prob=0.5)
        assert result.outcome.errors == 0
        assert result.svd.dynamic_total == 0
        assert result.frd.static_fp == 3
