"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_source


def parse_thread_body(body):
    tree = parse_source("thread t() { %s }" % body)
    return tree.threads[0].body


def parse_expr(text):
    body = parse_thread_body(f"x = {text};")
    # the body's single statement is an assignment whose value is our expr;
    # x must merely parse, not resolve
    return body[0].value


class TestDeclarations:
    def test_shared_scalar(self):
        tree = parse_source("shared int x; thread t() { }")
        decl = tree.variables[0]
        assert decl.name == "x"
        assert decl.storage == "shared"
        assert not decl.is_array

    def test_shared_scalar_with_init(self):
        tree = parse_source("shared int x = 7; thread t() { }")
        assert tree.variables[0].init == 7

    def test_negative_init(self):
        tree = parse_source("shared int x = -3; thread t() { }")
        assert tree.variables[0].init == -3

    def test_shared_array(self):
        tree = parse_source("shared int a[16]; thread t() { }")
        decl = tree.variables[0]
        assert decl.is_array
        assert decl.length == 16

    def test_array_init_list(self):
        tree = parse_source("shared int a[3] = {1, 2, 3}; thread t() { }")
        assert tree.variables[0].init_list == (1, 2, 3)

    def test_zero_length_array_rejected(self):
        with pytest.raises(ParseError):
            parse_source("shared int a[0]; thread t() { }")

    def test_local_storage(self):
        tree = parse_source("local int y; thread t() { }")
        assert tree.variables[0].storage == "local"

    def test_lock_declaration(self):
        tree = parse_source("lock m; thread t() { }")
        assert tree.locks[0].name == "m"

    def test_thread_with_params(self):
        tree = parse_source("thread t(int a, int b) { }")
        assert tree.threads[0].params == ["a", "b"]

    def test_thread_without_params(self):
        tree = parse_source("thread t() { }")
        assert tree.threads[0].params == []

    def test_junk_at_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse_source("banana;")


class TestStatements:
    def test_scalar_assignment(self):
        stmt = parse_thread_body("x = 1;")[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.target == "x"
        assert stmt.index is None

    def test_array_assignment(self):
        stmt = parse_thread_body("a[i] = 1;")[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert isinstance(stmt.index, ast.NameExpr)

    def test_local_decl_with_init(self):
        stmt = parse_thread_body("int x = 2;")[0]
        assert isinstance(stmt, ast.VarDeclStmt)
        assert isinstance(stmt.init, ast.NumberExpr)

    def test_local_array_decl(self):
        stmt = parse_thread_body("int buf[8];")[0]
        assert stmt.is_array
        assert stmt.length == 8

    def test_if_without_else(self):
        stmt = parse_thread_body("if (x) { y = 1; }")[0]
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_if_with_else(self):
        stmt = parse_thread_body("if (x) { y = 1; } else { y = 2; }")[0]
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        stmt = parse_thread_body(
            "if (x) { y = 1; } else if (z) { y = 2; } else { y = 3; }")[0]
        assert isinstance(stmt.else_body[0], ast.IfStmt)
        assert len(stmt.else_body[0].else_body) == 1

    def test_while(self):
        stmt = parse_thread_body("while (x < 3) { x = x + 1; }")[0]
        assert isinstance(stmt, ast.WhileStmt)

    def test_for_full(self):
        stmt = parse_thread_body("for (int i = 0; i < 4; i = i + 1) { }")[0]
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.VarDeclStmt)
        assert stmt.step is not None

    def test_for_with_assignment_init(self):
        stmt = parse_thread_body("for (i = 0; i < 4; i = i + 1) { }")[0]
        assert isinstance(stmt.init, ast.AssignStmt)

    def test_for_without_clauses(self):
        stmt = parse_thread_body("for (; x; ) { }")[0]
        assert stmt.init is None
        assert stmt.step is None

    def test_acquire_release(self):
        body = parse_thread_body("acquire(m); release(m);")
        assert body[0].action == "acquire"
        assert body[1].action == "release"
        assert body[0].lock_name == "m"

    def test_assert(self):
        stmt = parse_thread_body("assert(x == 1);")[0]
        assert isinstance(stmt, ast.AssertStmt)

    def test_output(self):
        stmt = parse_thread_body("output(x + 1);")[0]
        assert isinstance(stmt, ast.OutputStmt)

    def test_memcpy(self):
        stmt = parse_thread_body("memcpy(dst, off, src, 0, n);")[0]
        assert isinstance(stmt, ast.MemcpyStmt)
        assert stmt.dst == "dst"
        assert stmt.src == "src"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_thread_body("x = 1")

    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse_source("thread t() { x = 1;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_cmp_over_and(self):
        expr = parse_expr("a < b && c < d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "-"

    def test_unary_not(self):
        expr = parse_expr("!x")
        assert expr.op == "!"

    def test_nested_unary(self):
        expr = parse_expr("!!x")
        assert expr.operand.op == "!"

    def test_index_expression(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.IndexExpr)
        assert expr.index.op == "+"

    def test_modulo(self):
        expr = parse_expr("a % 3")
        assert expr.op == "%"

    def test_or_precedence_loosest(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"

    def test_error_on_empty_expression(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as exc:
            parse_source("thread t() {\n  x = ;\n}")
        assert exc.value.line == 2
