"""CLI exec --save-trace / analyze tests."""

import pytest

from repro.cli import main

RACE = """shared int counter = 0;
thread worker(int n) {
    int i = 0;
    while (i < n) {
        int c = counter;
        counter = c + 1;
        i = i + 1;
    }
}
"""


@pytest.fixture
def saved_trace(tmp_path, capsys):
    source = tmp_path / "race.msp"
    source.write_text(RACE)
    trace = tmp_path / "race.trace"
    assert main(["exec", str(source), "--thread", "worker:15",
                 "--thread", "worker:15", "--seed", "2",
                 "--save-trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "trace saved" in out
    return str(source), str(trace)


class TestAnalyze:
    def test_frd_over_saved_trace(self, saved_trace, capsys):
        source, trace = saved_trace
        # the trace is racy: reports -> exit 1
        assert main(["analyze", source, trace, "--detector", "frd"]) == 1
        out = capsys.readouterr().out
        assert "loaded" in out
        assert "frd:" in out
        assert "data-race" in out

    @pytest.mark.parametrize("detector,expected",
                             [("lockset", 1), ("offline", 1), ("stale", 0),
                              ("lock-order", 0), ("hybrid", 1),
                              ("atomizer", 0)])
    def test_every_detector_runs(self, saved_trace, detector, expected,
                                 capsys):
        source, trace = saved_trace
        assert main(["analyze", source, trace,
                     "--detector", detector]) == expected
        assert "dynamic reports" in capsys.readouterr().out

    def test_queries_mode(self, saved_trace, capsys):
        source, trace = saved_trace
        assert main(["analyze", source, trace, "--detector", "queries",
                     "--variable", "counter"]) == 0
        out = capsys.readouterr().out
        assert "shared variables" in out
        assert "history of counter" in out

    def test_missing_trace_file(self, saved_trace, capsys):
        source, _trace = saved_trace
        assert main(["analyze", source, "/does/not/exist"]) == 2

    def test_missing_source_file(self, saved_trace):
        _source, trace = saved_trace
        assert main(["analyze", "/does/not/exist.msp", trace]) == 2


class TestRecordReplayCli:
    def test_record_then_replay(self, tmp_path, capsys):
        source = tmp_path / "race.msp"
        source.write_text(RACE)
        recording = tmp_path / "run.rec"
        assert main(["exec", str(source), "--thread", "worker:15",
                     "--thread", "worker:15", "--seed", "2",
                     "--record", str(recording)]) == 0
        assert "recording saved" in capsys.readouterr().out
        assert main(["replay", str(source), str(recording), "--svd"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "svd:" in out

    def test_replay_wrong_program_rejected(self, tmp_path, capsys):
        source = tmp_path / "race.msp"
        source.write_text(RACE)
        recording = tmp_path / "run.rec"
        assert main(["exec", str(source), "--thread", "worker:10",
                     "--thread", "worker:10", "--record",
                     str(recording)]) == 0
        capsys.readouterr()
        other = tmp_path / "other.msp"
        other.write_text(RACE.replace("c + 1", "c + 2"))
        assert main(["replay", str(other), str(recording)]) == 2
        assert "fingerprint" in capsys.readouterr().err

    def test_replay_missing_recording(self, tmp_path):
        source = tmp_path / "race.msp"
        source.write_text(RACE)
        assert main(["replay", str(source), "/does/not/exist"]) == 2
