"""DetectorEngine: registry, phase scheduling, single-pass dispatch.

The acceptance probe lives here: a 4-detector comparison (SVD, FRD,
lockset, Atomizer) over one recorded trace must perform exactly one pass
of the event stream per engine-scheduled phase -- verified both through
:class:`repro.engine.EngineStats` (events *delivered* per phase) and
through external counters the engine cannot see (trace iteration and
batch-window requests).  Batch-path analyses must additionally never
receive a synthesized per-event call.
"""

import pytest

from repro.core.online import OnlineSVD
from repro.engine import (Analysis, DetectorEngine, EngineError,
                          ObserverAnalysis, SharedAddressIndex, available,
                          canonical_name, create, describe,
                          parse_detector_list)
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.machine.events import EV_LOAD, EV_STORE
from repro.trace.trace import Trace

from .. import conftest as fixtures


def _machine(source, threads, seed=1, switch_prob=0.4):
    program = compile_source(source)
    return program, Machine(
        program, threads,
        scheduler=RandomScheduler(seed=seed, switch_prob=switch_prob))


def _race_machine(seed=1):
    return _machine(fixtures.COUNTER_RACE,
                    [("worker", (15,)), ("worker", (15,))], seed=seed)


class TestRegistry:
    def test_available_names(self):
        names = available()
        for expected in ("svd", "frd", "lockset", "atomizer", "stale",
                         "lockorder", "hybrid", "offline", "precise"):
            assert expected in names

    def test_auxiliary_passes_hidden(self):
        assert "shared-index" not in available()
        assert "shared-index" in available(public_only=False)

    def test_aliases_resolve(self):
        assert canonical_name("lock-order") == "lockorder"
        assert canonical_name("stale-value") == "stale"
        assert canonical_name("svd-offline") == "offline"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown detector"):
            canonical_name("nonesuch")

    def test_create_builds_fresh_instances(self):
        program = compile_source(fixtures.COUNTER_RACE)
        first = create("frd", program)
        second = create("frd", program)
        assert first is not second
        assert first.name == "frd"

    def test_parse_detector_list(self):
        assert parse_detector_list("svd, frd") == ["svd", "frd"]
        assert parse_detector_list("frd,frd,lock-order") == ["frd",
                                                            "lockorder"]
        assert set(parse_detector_list("all")) == set(available())
        with pytest.raises(KeyError):
            parse_detector_list(", ,")

    def test_descriptions_exist(self):
        for name in available(public_only=False):
            assert describe(name)


class TestScheduling:
    def test_four_detector_probe_two_phases(self):
        """The acceptance probe: svd+frd+lockset stream in phase 0;
        atomizer (requires lockset) streams in phase 1; nothing else."""
        program, machine = _race_machine()
        engine = DetectorEngine(program,
                                ["svd", "frd", "lockset", "atomizer"])
        result = engine.run_machine(machine)
        stats = result.stats
        assert len(stats.phases) == 2
        assert stats.stream_passes == 2
        assert set(stats.phases[0].analyses) == {"svd", "frd", "lockset"}
        assert set(stats.phases[1].analyses) == {"atomizer"}
        # one pass per phase: each phase read the whole stream exactly once
        assert stats.phases[0].events_read == result.end_seq
        assert stats.phases[1].events_read == result.end_seq

    def test_external_event_count_probe(self):
        """Count stream materializations with probes the engine cannot
        see: a Trace subclass instrumenting both the per-event iterator
        and the batched window accessor.  A batched replay must request
        the windows once per streamed phase and never fall back to the
        per-event iterator; every phase still *delivers* the full
        stream (events_read == end_seq)."""

        class ProbedTrace(Trace):
            iterations = 0
            batch_requests = 0

            def __iter__(self):
                ProbedTrace.iterations += 1
                return super().__iter__()

            def batches(self, *args, **kwargs):
                ProbedTrace.batch_requests += 1
                return super().batches(*args, **kwargs)

        program, machine = _race_machine()
        live = DetectorEngine(program, ["svd"])
        trace = live.run_machine(machine, keep_trace=True).trace
        probed = ProbedTrace(program, list(trace.events), trace.n_threads)

        engine = DetectorEngine(program,
                                ["svd", "frd", "lockset", "atomizer"])
        result = engine.run_trace(probed)
        assert ProbedTrace.iterations == 0   # no per-event pass at all
        assert ProbedTrace.batch_requests == 2  # one per phase, no more
        assert result.stats.stream_passes == 2
        # events-delivered: each phase saw the whole stream exactly once
        for phase in result.stats.phases:
            assert phase.events_read == result.end_seq

        # the differential reference (batched=False) is the old shape:
        # one per-event iteration per phase, no batch requests
        reference = ProbedTrace(program, list(trace.events),
                                trace.n_threads)
        DetectorEngine(program, ["svd", "frd", "lockset", "atomizer"],
                       batched=False).run_trace(reference)
        assert ProbedTrace.iterations == 2
        assert ProbedTrace.batch_requests == 2  # unchanged

    def test_batch_path_analysis_never_sees_per_event_call(self):
        """An analysis on the batched fast path must receive the stream
        exclusively through consume_batch -- zero synthesized on_event
        calls -- while a per-event-only analysis in the same phase gets
        every event synthesized, in exact seq order."""

        class BatchOnlyProbe(Analysis):
            name = "batch-only-probe"
            interests = None

            def __init__(self):
                self.per_event_calls = 0
                self.batches = 0
                self.events_delivered = 0

            def on_event(self, event):
                self.per_event_calls += 1

            def consume_batch(self, batch):
                self.batches += 1
                self.events_delivered += batch.count

        class PerEventProbe(Analysis):
            name = "per-event-probe"
            interests = None
            consume_batch = None  # opts out of the batch path

            def __init__(self):
                self.seqs = []

            def on_event(self, event):
                self.seqs.append(event.seq)

        program, machine = _race_machine()
        batch_probe = BatchOnlyProbe()
        event_probe = PerEventProbe()
        result = DetectorEngine(
            program, ["svd", batch_probe, event_probe]).run_machine(machine)
        assert batch_probe.per_event_calls == 0
        assert batch_probe.batches >= 1
        assert batch_probe.events_delivered == result.end_seq
        # the synthesized stream is complete and in seq order
        assert event_probe.seqs == list(range(result.end_seq))

    def test_dependencies_instantiated_once(self):
        program, machine = _race_machine()
        engine = DetectorEngine(program, ["stale", "hybrid", "atomizer"])
        # hybrid pulls lockset+frd, stale pulls shared-index, atomizer
        # reuses the same lockset instance
        names = sorted(engine._analyses)
        assert names == ["atomizer", "frd", "hybrid", "lockset",
                         "shared-index", "stale"]

    def test_pure_composition_phase_skipped(self):
        """hybrid subscribes to no events; when it is the only analysis
        in its phase the stream is not re-read."""
        program, machine = _race_machine()
        engine = DetectorEngine(program, ["hybrid"])
        result = engine.run_machine(machine)
        last = result.stats.phases[-1]
        assert last.analyses == ("hybrid",)
        assert last.skipped
        assert last.events_read == 0
        assert result.stats.stream_passes == len(result.stats.phases) - 1

    def test_cycle_detection(self):
        class A(Analysis):
            name = "cyc-a"
            requires = ("cyc-b",)

        class B(Analysis):
            name = "cyc-b"
            requires = ("cyc-a",)

        program, _ = _race_machine()
        engine = DetectorEngine(program)
        engine._analyses = {"cyc-a": A(), "cyc-b": B()}
        engine._requested = ["cyc-a"]
        with pytest.raises(EngineError, match="cycle"):
            engine._phases()

    def test_engine_is_single_use(self):
        program, machine = _race_machine()
        engine = DetectorEngine(program, ["svd"])
        engine.run_machine(machine)
        _, machine2 = _race_machine(seed=2)
        with pytest.raises(EngineError, match="one execution"):
            engine.run_machine(machine2)

    def test_no_analyses_rejected(self):
        program, machine = _race_machine()
        with pytest.raises(EngineError, match="no analyses"):
            DetectorEngine(program).run_machine(machine)

    def test_duplicate_name_rejected(self):
        program, _ = _race_machine()
        engine = DetectorEngine(program, ["frd"])
        clash = SharedAddressIndex(program)
        clash.name = "frd"
        with pytest.raises(EngineError, match="named 'frd'"):
            engine.add(clash)


class TestRecording:
    def test_no_recorder_for_single_online_phase(self):
        program, machine = _race_machine()
        result = DetectorEngine(program, ["svd", "frd"]).run_machine(machine)
        assert result.trace is None

    def test_recorder_attached_when_later_phases_exist(self):
        program, machine = _race_machine()
        result = DetectorEngine(program, ["svd", "atomizer"]).run_machine(
            machine)
        assert result.trace is not None
        assert result.trace.end_seq == result.end_seq

    def test_keep_trace_forces_recording(self):
        program, machine = _race_machine()
        result = DetectorEngine(program, ["svd"]).run_machine(
            machine, keep_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.end_seq


class TestEquivalence:
    """Engine runs must reproduce the standalone detector APIs exactly."""

    def _trace_and_reports(self, source, threads, detectors, seed=1):
        program, machine = _machine(source, threads, seed=seed)
        result = DetectorEngine(program, detectors).run_machine(
            machine, keep_trace=True)
        return program, result

    @pytest.mark.parametrize("name", ["frd", "lockset", "atomizer",
                                      "stale", "lockorder", "hybrid"])
    def test_engine_matches_standalone(self, name):
        program, result = self._trace_and_reports(
            fixtures.COUNTER_RACE, [("worker", (15,)), ("worker", (15,))],
            [name])
        standalone = create(name, program)
        expected = standalone.run(result.trace)
        got = result.report(name)
        assert [(v.kind, v.seq, v.tid, v.loc, v.address, v.other_loc,
                 v.other_tid) for v in got] == \
               [(v.kind, v.seq, v.tid, v.loc, v.address, v.other_loc,
                 v.other_tid) for v in expected]

    def test_svd_live_equals_replay(self):
        program, result = self._trace_and_reports(
            fixtures.COUNTER_RACE, [("worker", (15,)), ("worker", (15,))],
            ["svd"])
        replay = DetectorEngine(program, ["svd"]).run_trace(result.trace)
        live_report = result.report("svd")
        assert [(v.seq, v.kind, v.loc) for v in replay.report("svd")] == \
               [(v.seq, v.kind, v.loc) for v in live_report]
        live_svd: OnlineSVD = result.detector("svd")
        assert isinstance(live_svd, OnlineSVD)
        assert replay.detector("svd").instructions == live_svd.instructions

    def test_shared_index_matches_private_pass(self):
        program, result = self._trace_and_reports(
            fixtures.COUNTER_RACE, [("worker", (15,)), ("worker", (15,))],
            ["stale"])
        index = result.analysis("shared-index")
        expected = {e.addr for e in result.trace
                    if e.kind in (EV_LOAD, EV_STORE)
                    and len({x.tid for x in result.trace
                             if x.kind in (EV_LOAD, EV_STORE)
                             and x.addr == e.addr}) > 1}
        assert index.shared_addresses == expected


class TestResultSurface:
    def test_reports_keyed_by_request(self):
        program, machine = _race_machine()
        result = DetectorEngine(program, ["svd", "frd"]).run_machine(machine)
        assert set(result.reports) == {"svd", "frd"}
        assert result.report("svd") is result.reports["svd"]

    def test_unwrap_reaches_observer(self):
        program, machine = _race_machine()
        result = DetectorEngine(program, ["svd"]).run_machine(machine)
        assert isinstance(result.analysis("svd"), ObserverAnalysis)
        assert isinstance(result.detector("svd"), OnlineSVD)

    def test_reportless_analysis_raises(self):
        program, machine = _race_machine()
        engine = DetectorEngine(program, ["shared-index"])
        result = engine.run_machine(machine)
        with pytest.raises(KeyError, match="no report"):
            result.report("shared-index")
        assert result.reports == {}
