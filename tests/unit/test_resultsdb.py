"""The persistent results database: schema, the ``write_run`` entry
point, fingerprint grouping, trend queries and gating, and the
deterministic JSONL export."""

import json
import sqlite3

import pytest

from repro import resultsdb
from repro.core.report import Violation
from repro.resultsdb import (MIN_HISTORY, ResultsDB, ResultsDBError,
                             config_fingerprint, iter_jsonl, open_db,
                             render_trend_table, trend_check,
                             violation_report_fingerprints)


@pytest.fixture
def db(tmp_path):
    with open_db(str(tmp_path / "results.db")) as handle:
        yield handle


def bench(db, value, label="BENCH_engine.json", **kwargs):
    """Record one bench run whose payload carries ``speedup=value``."""
    return db.write_run("bench", label, {"artefact": label},
                        payload={"speedup": value}, **kwargs)


class TestFingerprint:
    def test_deterministic_and_order_independent(self):
        a = config_fingerprint({"x": 1, "y": [2, 3]})
        b = config_fingerprint({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 16 and int(a, 16) >= 0

    def test_differs_on_content(self):
        assert config_fingerprint({"x": 1}) != config_fingerprint({"x": 2})


class TestWriteRun:
    def test_round_trip_all_columns(self, db):
        run_id = db.write_run(
            "run", "stringbuffer", {"workload": "stringbuffer"},
            status="violations", violations=3, events=1000, elapsed=0.5,
            schedule_seed=7, model_seed=7, master_seed=None,
            detectors=["frd", "svd"], consistency="tso",
            payload={"p": 1}, obs={"counters": {"a": 1}},
            violation_fingerprints=["svd:rw:loc=1,other=2"],
            heartbeat={"completed": 4}, git_commit="abc123",
            recorded_at="2026-08-08T00:00:00+00:00")
        record = db.get(run_id)
        assert record.kind == "run"
        assert record.label == "stringbuffer"
        assert record.fingerprint == config_fingerprint(
            {"workload": "stringbuffer"})
        assert record.status == "violations"
        assert (record.violations, record.events) == (3, 1000)
        assert record.elapsed == 0.5
        assert (record.schedule_seed, record.model_seed) == (7, 7)
        assert record.detectors == ("frd", "svd")
        assert record.consistency == "tso"
        assert record.payload == {"p": 1}
        assert record.obs == {"counters": {"a": 1}}
        assert record.violation_fingerprints == ["svd:rw:loc=1,other=2"]
        assert record.heartbeat == {"completed": 4}
        assert record.git_commit == "abc123"
        assert record.recorded_at == "2026-08-08T00:00:00+00:00"

    def test_unknown_kind_rejected(self, db):
        with pytest.raises(ResultsDBError):
            db.write_run("benchmark", "x", {})

    def test_defaults_fill_in(self, db):
        run_id = db.write_run("bench", "x", {}, git_commit="")
        record = db.get(run_id)
        assert record.status == "ok"
        assert record.violations == 0 and record.events == 0
        assert record.recorded_at  # stamped now
        assert record.payload is None and record.obs is None

    def test_module_level_one_shot(self, tmp_path):
        path = str(tmp_path / "one.db")
        run_id = resultsdb.write_run(path, "bench", "x", {"a": 1})
        with open_db(path) as db:
            assert db.get(run_id).config == {"a": 1}

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "results.db")
        with open_db(path) as db:
            bench(db, 1.5)
        with open_db(path) as db:
            assert db.count() == 1
            assert db.latest().payload == {"speedup": 1.5}

    def test_not_a_database_is_an_error(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_text("definitely not sqlite, padded to be longer "
                        "than the sqlite header so the open fails")
        with pytest.raises(ResultsDBError):
            open_db(str(path))

    def test_newer_schema_rejected(self, tmp_path):
        path = str(tmp_path / "results.db")
        with open_db(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ResultsDBError):
            open_db(path)


class TestQueries:
    def test_missing_run_id(self, db):
        with pytest.raises(ResultsDBError):
            db.get(42)

    def test_latest_and_filters(self, db):
        bench(db, 1.0)
        bench(db, 2.0, label="BENCH_interp.json")
        db.write_run("fuzz", "fuzz", {})
        assert db.latest().kind == "fuzz"
        assert db.latest(kind="bench").payload == {"speedup": 2.0}
        assert [r.label for r in db.list_runs(kind="bench")] == [
            "BENCH_engine.json", "BENCH_interp.json"]
        with pytest.raises(ResultsDBError):
            db.latest(kind="campaign")

    def test_limit_keeps_newest_oldest_first(self, db):
        for value in (1.0, 2.0, 3.0, 4.0):
            bench(db, value)
        records = db.list_runs(limit=2)
        assert [r.payload["speedup"] for r in records] == [3.0, 4.0]

    def test_trend_values_skip_missing_keys(self, db):
        bench(db, 1.0)
        db.write_run("bench", "BENCH_engine.json",
                     {"artefact": "BENCH_engine.json"},
                     payload={"other": 9})
        bench(db, 3.0)
        points = db.trend_values("BENCH_engine.json", "speedup")
        assert [v for _r, v in points] == [1.0, 3.0]

    def test_trend_values_filter_by_fingerprint(self, db):
        bench(db, 1.0)
        db.write_run("bench", "BENCH_engine.json", {"different": True},
                     payload={"speedup": 99.0})
        fp = config_fingerprint({"artefact": "BENCH_engine.json"})
        points = db.trend_values("BENCH_engine.json", "speedup",
                                 fingerprint=fp)
        assert [v for _r, v in points] == [1.0]


class TestViolationFingerprints:
    def report(self, *pairs):
        class Report:
            violations = [
                Violation(detector="svd", seq=i, tid=0, loc=loc,
                          address=0, kind="unserializable",
                          other_loc=other, other_tid=1)
                for i, (loc, other) in enumerate(pairs)]
        return Report()

    def test_static_dedup_and_sort(self):
        reports = {"svd": self.report((5, 9), (5, 9), (2, 3))}
        keys = violation_report_fingerprints(reports)
        assert keys == ["svd:unserializable:loc=2,other=3",
                        "svd:unserializable:loc=5,other=9"]

    def test_empty_and_missing_attribute(self):
        assert violation_report_fingerprints({}) == []
        assert violation_report_fingerprints({"svd": object()}) == []


class TestTrendCheck:
    def seeded(self, db, *values):
        for value in values:
            bench(db, value)

    def test_insufficient_history_passes(self, db):
        self.seeded(db, 1.5)
        assert MIN_HISTORY == 2
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 0.1}, ["speedup"])
        assert check.ok and check.median is None
        assert "needs >= 2" in check.render()

    def test_regression_beyond_tolerance_fails(self, db):
        self.seeded(db, 1.5, 1.6, 1.7)
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 0.8}, ["speedup"])
        assert not check.ok
        assert check.median == 1.6
        assert check.threshold == pytest.approx(1.44)
        assert "FAIL" in check.render()

    def test_within_tolerance_passes(self, db):
        self.seeded(db, 1.5, 1.6, 1.7)
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 1.5}, ["speedup"])
        assert check.ok and "trend ok" in check.render()

    def test_median_ignores_one_outlier(self, db):
        self.seeded(db, 1.6, 1.6, 1.6, 1.6, 40.0)
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 1.55}, ["speedup"])
        assert check.ok and check.median == 1.6

    def test_window_limits_history(self, db):
        # five ancient slow runs roll out of a window of 2
        self.seeded(db, 9.0, 9.0, 9.0, 9.0, 9.0, 1.0, 1.0)
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 1.0}, ["speedup"], window=2)
        assert check.ok and check.median == 1.0

    def test_improvement_always_passes(self, db):
        self.seeded(db, 1.5, 1.5)
        (check,) = trend_check(db, "BENCH_engine.json",
                               {"speedup": 100.0}, ["speedup"])
        assert check.ok


class TestRenderTrendTable:
    def test_renders_one_line_per_point(self, db):
        for value in (1.5, 1.6, 0.8):
            bench(db, value)
        points = db.trend_values("BENCH_engine.json", "speedup")
        table = render_trend_table(points, "speedup")
        lines = table.splitlines()
        assert len(lines) == 4  # header + 3 points
        assert "speedup" in lines[0]
        # the regression shows a negative delta vs the running median
        assert "-" in lines[3] and "%" in lines[3]

    def test_empty(self):
        assert "no recorded runs" in render_trend_table([], "speedup")


class TestExport:
    def test_jsonl_round_trip_and_determinism(self, db, tmp_path):
        bench(db, 1.5, git_commit="aaa",
              recorded_at="2026-08-08T00:00:00+00:00")
        bench(db, 1.6, git_commit="bbb",
              recorded_at="2026-08-08T00:01:00+00:00")
        out = tmp_path / "export.jsonl"
        assert db.export_jsonl(str(out)) == 2
        first = out.read_bytes()
        records = list(iter_jsonl(str(out)))
        assert [r["payload"]["speedup"] for r in records] == [1.5, 1.6]
        assert records[0]["fingerprint"] == config_fingerprint(
            {"artefact": "BENCH_engine.json"})
        # canonical JSON: re-exporting the same database is byte-stable
        db.export_jsonl(str(out))
        assert out.read_bytes() == first


class TestMergeDatabases:
    """``repro db merge``: commutative, idempotent consolidation of
    per-shard (or per-host) result stores."""

    def _shard_db(self, tmp_path, name, rows):
        path = str(tmp_path / f"{name}.db")
        with open_db(path) as db:
            for seed, at in rows:
                db.write_run(
                    "run", "stringbuffer", {"workload": "stringbuffer"},
                    schedule_seed=seed, violations=1, events=100,
                    git_commit="abc",
                    recorded_at=f"2026-08-08T00:0{at}:00+00:00")
        return path

    def _export(self, path, tmp_path, tag):
        out = str(tmp_path / f"{tag}.jsonl")
        with open_db(path) as db:
            db.export_jsonl(out)
        # run_id depends on insertion order alone; drop it so two
        # merged stores compare on content
        return [{k: v for k, v in record.items() if k != "run_id"}
                for record in iter_jsonl(out)]

    def test_merge_is_commutative_and_idempotent(self, tmp_path):
        a = self._shard_db(tmp_path, "a", [(1, 1), (2, 2)])
        b = self._shard_db(tmp_path, "b", [(3, 3)])
        ab = str(tmp_path / "ab.db")
        ba = str(tmp_path / "ba.db")
        assert resultsdb.merge_databases([a, b], ab) == 3
        assert resultsdb.merge_databases([b, a], ba) == 3
        assert self._export(ab, tmp_path, "ab") == \
            self._export(ba, tmp_path, "ba")
        # merging again adds nothing and changes nothing
        before = self._export(ab, tmp_path, "ab2")
        assert resultsdb.merge_databases([a, b], ab) == 0
        assert self._export(ab, tmp_path, "ab3") == before

    def test_duplicate_rows_collapse_real_reruns_survive(self, tmp_path):
        # a and b share one identical row (same seed, same timestamp);
        # c re-ran the same seed at a different time -- a genuine rerun
        a = self._shard_db(tmp_path, "a", [(1, 1)])
        b = self._shard_db(tmp_path, "b", [(1, 1), (2, 2)])
        c = self._shard_db(tmp_path, "c", [(1, 5)])
        dest = str(tmp_path / "all.db")
        assert resultsdb.merge_databases([a, b, c], dest) == 3
        with open_db(dest) as db:
            seeds = sorted((r.schedule_seed, r.recorded_at)
                           for r in db.list_runs())
        assert seeds == [(1, "2026-08-08T00:01:00+00:00"),
                         (1, "2026-08-08T00:05:00+00:00"),
                         (2, "2026-08-08T00:02:00+00:00")]

    def test_merge_into_existing_destination_dedups(self, tmp_path):
        a = self._shard_db(tmp_path, "a", [(1, 1), (2, 2)])
        dest = self._shard_db(tmp_path, "dest", [(2, 2), (3, 3)])
        assert resultsdb.merge_databases([a], dest) == 1
        with open_db(dest) as db:
            assert sorted(r.schedule_seed for r in db.list_runs()) == \
                [1, 2, 3]

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(ResultsDBError, match="no such results"):
            resultsdb.merge_databases(
                [str(tmp_path / "nope.db")], str(tmp_path / "out.db"))
