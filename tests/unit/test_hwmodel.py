"""Hardware cost model tests (paper §4.4)."""

import pytest

from repro.core import OnlineSVD
from repro.core.hwmodel import HwCostParams, estimate_hardware_cost
from repro.machine import RandomScheduler
from repro.workloads import apache_log, mysql_tablelock


@pytest.fixture(scope="module")
def apache_svd():
    workload = apache_log()
    svd = OnlineSVD(workload.program)
    machine = workload.make_machine(
        RandomScheduler(seed=3, switch_prob=0.4), observers=[svd])
    machine.run()
    return svd


class TestEstimate:
    def test_counts_consistent(self, apache_svd):
        est = estimate_hardware_cost(apache_svd)
        assert est.counts["instructions"] == apache_svd.instructions
        assert est.counts["remote_messages"] == apache_svd.remote_messages
        assert est.counts["violation_checks"] == apache_svd.violation_checks
        assert est.counts["cu_lifecycle"] == (
            apache_svd.cus_created + apache_svd.cus_closed
            + apache_svd.cus_merged)

    def test_software_slowdown_in_paper_regime(self, apache_svd):
        """The calibration puts per-instruction dependence tracking in the
        paper's 'up to 65x' ballpark."""
        est = estimate_hardware_cost(apache_svd)
        assert 30.0 < est.sw_slowdown < 120.0

    def test_hardware_dramatically_cheaper(self, apache_svd):
        est = estimate_hardware_cost(apache_svd)
        assert est.hw_slowdown < est.sw_slowdown / 10
        assert est.speedup_over_software > 10

    def test_slowdowns_at_least_one(self, apache_svd):
        est = estimate_hardware_cost(apache_svd)
        assert est.sw_slowdown >= 1.0
        assert est.hw_slowdown >= 1.0

    def test_spill_penalty_applies(self, apache_svd):
        tiny_table = HwCostParams(hw_table_capacity=1)
        spilled = estimate_hardware_cost(apache_svd, tiny_table)
        normal = estimate_hardware_cost(apache_svd)
        assert spilled.counts["table_spills"] > 0
        assert spilled.hw_extra_cycles > normal.hw_extra_cycles

    def test_empty_run_rejected(self):
        workload = mysql_tablelock()
        svd = OnlineSVD(workload.program)
        with pytest.raises(ValueError):
            estimate_hardware_cost(svd)

    def test_custom_params_scale(self, apache_svd):
        doubled = HwCostParams(sw_per_instruction=80.0)
        base = estimate_hardware_cost(apache_svd)
        heavy = estimate_hardware_cost(apache_svd, doubled)
        assert heavy.sw_slowdown > base.sw_slowdown
