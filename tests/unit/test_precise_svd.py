"""Precise (conflict-cycle) online detector tests."""

import pytest

from repro.core import OnlineSVD, PreciseSVD, SvdConfig
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler, SerialScheduler
from repro.pdg import build_dpdg, reference_cu_partition
from repro.serializability import is_serializable
from repro.trace import TraceRecorder
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def run_precise(source, threads, seed=1, switch=0.5, scheduler=None):
    program = compile_source(source)
    detector = PreciseSVD(program)
    machine = Machine(program, threads,
                      scheduler=scheduler or RandomScheduler(
                          seed=seed, switch_prob=switch),
                      observers=[detector])
    machine.run(max_steps=200_000)
    return machine, detector


class TestDetection:
    def test_detects_lost_update(self):
        found = False
        for seed in range(5):
            machine, det = run_precise(
                COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
                seed=seed)
            if machine.read_global("counter") < 60:
                found = found or det.report.dynamic_count > 0
        assert found

    def test_silent_on_locked_counter(self):
        for seed in range(4):
            _m, det = run_precise(
                COUNTER_LOCKED, [("worker", (25,)), ("worker", (25,))],
                seed=seed)
            assert det.report.dynamic_count == 0, seed

    def test_silent_on_serial_execution(self):
        _m, det = run_precise(COUNTER_RACE,
                              [("worker", (20,)), ("worker", (20,))],
                              scheduler=SerialScheduler())
        assert det.report.dynamic_count == 0

    def test_violation_kind(self):
        _m, det = run_precise(COUNTER_RACE,
                              [("worker", (30,)), ("worker", (30,))],
                              switch=0.6)
        for v in det.report:
            assert v.kind == "serializability-cycle"
            assert v.detector == "svd-precise"

    def test_2pl_gap_false_positive_eliminated(self):
        """A CS-read value used after release violates strict 2PL but not
        serializability: 2PL mode reports, precise mode must not."""
        source = """
        shared int ticket = 0;
        lock m;
        local int stats;
        thread worker(int n) {
            int i = 0;
            while (i < n) {
                acquire(m);
                int mine = ticket;
                ticket = mine + 1;
                release(m);
                // use the CS-read value after the release: violates
                // strict 2PL whenever the other thread takes the next
                // ticket first, yet the execution stays serializable
                stats = stats + mine;
                i = i + 1;
            }
        }
        """
        threads = [("worker", (20,)), ("worker", (20,))]
        program = compile_source(source)
        two_pl = OnlineSVD(program)
        m1 = Machine(program, threads,
                     scheduler=RandomScheduler(seed=2, switch_prob=0.5),
                     observers=[two_pl])
        m1.run()
        _m2, precise = run_precise(source, threads, seed=2)
        assert two_pl.report.dynamic_count > 0  # the 2PL-gap FP fires
        assert precise.report.dynamic_count == 0  # serializable: silent

    def test_reports_agree_with_ground_truth_on_race(self):
        """When precise mode reports, the reference-CU conflict graph of
        the identical trace must indeed be cyclic."""
        program = compile_source(COUNTER_RACE)
        for seed in range(4):
            detector = PreciseSVD(program)
            recorder = TraceRecorder(program, 2)
            machine = Machine(program, [("worker", (15,)), ("worker", (15,))],
                              scheduler=RandomScheduler(seed=seed,
                                                        switch_prob=0.5),
                              observers=[detector, recorder])
            machine.run()
            if detector.report.dynamic_count:
                trace = recorder.trace()
                pdg = build_dpdg(trace)
                parts = {t: reference_cu_partition(pdg, t) for t in (0, 1)}
                assert not is_serializable(trace, parts).serializable
                return
        pytest.skip("no seed produced a precise report")


class TestMechanics:
    def test_statistics_populated(self):
        _m, det = run_precise(COUNTER_RACE,
                              [("worker", (20,)), ("worker", (20,))],
                              switch=0.6)
        assert det.edges_added > 0
        assert det.cycle_checks > 0
        assert det.nodes_tracked > 0

    def test_no_duplicate_cycle_reports(self):
        _m, det = run_precise(COUNTER_RACE,
                              [("worker", (30,)), ("worker", (30,))],
                              switch=0.6)
        pairs = [(min(v.tid, v.other_tid), max(v.tid, v.other_tid), v.seq)
                 for v in det.report]
        assert len(pairs) == len(set(pairs))

    def test_base_2pl_check_disabled(self):
        program = compile_source(COUNTER_RACE)
        detector = PreciseSVD(program)
        assert detector.config.enable_2pl_check is False
        # all reports flow through the precise path
        machine = Machine(program, [("worker", (20,)), ("worker", (20,))],
                          scheduler=RandomScheduler(seed=1, switch_prob=0.5),
                          observers=[detector])
        machine.run()
        assert all(v.detector == "svd-precise" for v in detector.report)

    def test_cu_inference_unchanged(self):
        """Precise mode reuses the identical CU machinery."""
        program = compile_source(COUNTER_LOCKED)
        threads = [("worker", (15,)), ("worker", (15,))]
        base = OnlineSVD(program)
        m1 = Machine(program, threads,
                     scheduler=RandomScheduler(seed=4, switch_prob=0.5),
                     observers=[base])
        m1.run()
        precise = PreciseSVD(program)
        m2 = Machine(program, threads,
                     scheduler=RandomScheduler(seed=4, switch_prob=0.5),
                     observers=[precise])
        m2.run()
        assert precise.cus_created == base.cus_created
        assert precise.cus_closed == base.cus_closed
