"""Machine execution semantics, locks, crashes, checkpoints, determinism."""

import pytest

from repro.lang import compile_source
from repro.machine import (
    EV_ACQUIRE, EV_LOAD, EV_RELEASE, EV_STORE, Machine, MachineStatus,
    RandomScheduler, ReplayScheduler, RoundRobinScheduler, SerialScheduler,
)
from repro.trace import TraceRecorder
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


class TestBasicExecution:
    def test_finished_status(self):
        m, _ = run_program("shared int x; thread t() { x = 1; }", [("t", ())])
        assert m.status == MachineStatus.FINISHED

    def test_step_limit_status(self):
        src = "shared int x; thread t() { while (1) { x = x + 1; } }"
        m, _ = run_program(src, [("t", ())], max_steps=100)
        assert m.status == MachineStatus.STEP_LIMIT
        assert m.steps == 100

    def test_wrong_thread_name_rejected(self):
        prog = compile_source("thread t() { }")
        with pytest.raises(KeyError):
            Machine(prog, [("missing", ())])

    def test_wrong_arity_rejected(self):
        prog = compile_source("thread t(int a) { }")
        with pytest.raises(ValueError):
            Machine(prog, [("t", ())])

    def test_no_threads_rejected(self):
        prog = compile_source("thread t() { }")
        with pytest.raises(ValueError):
            Machine(prog, [])

    def test_multiple_instances_of_one_body(self):
        src = "shared int r; thread t(int k) { r = r + k; }"
        m, _ = run_program(src, [("t", (1,)), ("t", (2,)), ("t", (4,))],
                           switch_prob=1.0)
        # additions may race, but with serial-ish scheduling sum holds:
        assert m.read_global("r") > 0

    def test_frames_do_not_overlap(self):
        src = ("shared int r0; shared int r1;"
               "thread t(int tid) { int mine = tid * 100;"
               " if (tid == 0) { r0 = mine; } else { r1 = mine; } }")
        m, _ = run_program(src, [("t", (0,)), ("t", (1,))])
        assert m.read_global("r0") == 0
        assert m.read_global("r1") == 100

    def test_memory_fault_crashes_thread(self):
        src = ("shared int a[4]; shared int n = 100;"
               "thread t() { a[n] = 1; }")
        m, _ = run_program(src, [("t", ())])
        assert m.crashed
        assert "memory fault" in m.crashes[0].reason

    def test_negative_index_faults(self):
        src = "shared int a[4]; shared int n = -99; thread t() { a[n] = 1; }"
        m, _ = run_program(src, [("t", ())])
        assert m.crashed

    def test_crash_does_not_stop_other_threads(self):
        src = ("shared int r; thread bad() { assert(0); }"
               "thread good() { int i = 0;"
               " while (i < 10) { r = r + 1; i = i + 1; } }")
        m, _ = run_program(src, [("bad", ()), ("good", ())])
        assert m.crashed
        assert m.read_global("r") == 10
        assert m.status == MachineStatus.FINISHED


class TestLocks:
    def test_mutual_exclusion(self):
        m, _ = run_program(COUNTER_LOCKED, [("worker", (50,)), ("worker", (50,))],
                           seed=9, switch_prob=0.5)
        assert m.read_global("counter") == 100

    def test_race_without_lock_loses_updates(self):
        # with aggressive switching some interleaving loses updates
        lost_any = False
        for seed in range(5):
            m, _ = run_program(COUNTER_RACE, [("worker", (50,)), ("worker", (50,))],
                               seed=seed, switch_prob=0.6)
            if m.read_global("counter") < 100:
                lost_any = True
        assert lost_any

    def test_blocked_thread_waits(self):
        src = ("shared int r; lock m;"
               "thread holder() { acquire(m);"
               " int i = 0; while (i < 20) { i = i + 1; }"
               " r = 1; release(m); }"
               "thread waiter() { acquire(m); assert(r == 1); release(m); }")
        # force waiter to try the lock while holder owns it
        prog = compile_source(src)
        m = Machine(prog, [("holder", ()), ("waiter", ())],
                    scheduler=RoundRobinScheduler(quantum=2))
        m.run()
        assert not m.crashed
        assert m.status == MachineStatus.FINISHED

    def test_self_deadlock_detected(self):
        src = "lock m; thread t() { acquire(m); acquire(m); }"
        m, _ = run_program(src, [("t", ())])
        assert m.status == MachineStatus.DEADLOCK

    def test_cross_deadlock_detected(self):
        src = ("lock a; lock b;"
               "thread t1() { acquire(a);"
               " int i = 0; while (i < 50) { i = i + 1; } acquire(b); }"
               "thread t2() { acquire(b);"
               " int i = 0; while (i < 50) { i = i + 1; } acquire(a); }")
        prog = compile_source(src)
        m = Machine(prog, [("t1", ()), ("t2", ())],
                    scheduler=RoundRobinScheduler(quantum=5))
        m.run()
        assert m.status == MachineStatus.DEADLOCK

    def test_lock_events_emitted(self):
        m, trace = run_program(
            "lock m; thread t() { acquire(m); release(m); }",
            [("t", ())], record=True)
        kinds = [e.kind for e in trace]
        assert EV_ACQUIRE in kinds
        assert EV_RELEASE in kinds


class TestDeterminism:
    def _run(self, seed):
        m, trace = run_program(COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
                               seed=seed, record=True)
        return m.read_global("counter"), [(e.tid, e.pc) for e in trace]

    def test_same_seed_same_execution(self):
        assert self._run(5) == self._run(5)

    def test_different_seeds_differ(self):
        # at least one of several seeds must give a different interleaving
        base = self._run(0)
        assert any(self._run(s) != base for s in range(1, 6))

    def test_replay_scheduler_reproduces_run(self):
        prog = compile_source(COUNTER_RACE)
        m1 = Machine(prog, [("worker", (20,)), ("worker", (20,))],
                     scheduler=RandomScheduler(seed=7, switch_prob=0.4),
                     record_schedule=True)
        m1.run()
        rec = TraceRecorder(prog, 2)
        m2 = Machine(prog, [("worker", (20,)), ("worker", (20,))],
                     scheduler=ReplayScheduler(m1.recorded_schedule),
                     observers=[rec])
        m2.run()
        assert m2.read_global("counter") == m1.read_global("counter")
        assert m2.steps == m1.steps


class TestCheckpointRestore:
    def test_restore_resets_memory_and_output(self):
        src = ("shared int x; thread t() {"
               " int i = 0; while (i < 10) { x = x + 1; output(x);"
               " i = i + 1; } }")
        prog = compile_source(src)
        m = Machine(prog, [("t", ())], scheduler=SerialScheduler())
        # run a little, checkpoint, run to completion, restore
        for _ in range(20):
            m.step()
        snap = m.checkpoint()
        x_at_snap = m.read_global("x")
        outputs_at_snap = len(m.output)
        m.run()
        assert m.read_global("x") == 10
        m.restore(snap)
        assert m.read_global("x") == x_at_snap
        assert len(m.output) == outputs_at_snap
        assert m.status == MachineStatus.RUNNING

    def test_run_after_restore_completes_identically(self):
        prog = compile_source(COUNTER_LOCKED)
        m = Machine(prog, [("worker", (10,)), ("worker", (10,))],
                    scheduler=RandomScheduler(seed=3, switch_prob=0.4))
        for _ in range(50):
            m.step()
        snap = m.checkpoint()
        m.run()
        final_first = m.read_global("counter")
        m.restore(snap)
        m.run()
        assert m.read_global("counter") == final_first == 20

    def test_restore_truncates_crashes(self):
        src = "thread t() { assert(0); }"
        prog = compile_source(src)
        m = Machine(prog, [("t", ())])
        snap = m.checkpoint()
        m.run()
        assert m.crashed
        m.restore(snap)
        assert not m.crashed


class TestSchedulers:
    def test_serial_runs_one_thread_to_completion(self):
        src = ("shared int r; shared int first = -1;"
               "thread t(int tid) {"
               " if (first == -1) { first = tid; }"
               " int i = 0; while (i < 5) { r = r + 1; i = i + 1; } }")
        prog = compile_source(src)
        m = Machine(prog, [("t", (0,)), ("t", (1,))],
                    scheduler=SerialScheduler(), record_schedule=True)
        m.run()
        # schedule must be a block of 0s followed by a block of 1s
        sched = m.recorded_schedule
        switch_points = sum(1 for a, b in zip(sched, sched[1:]) if a != b)
        assert switch_points == 1

    def test_round_robin_quantum(self):
        prog = compile_source(COUNTER_RACE)
        m = Machine(prog, [("worker", (5,)), ("worker", (5,))],
                    scheduler=RoundRobinScheduler(quantum=4),
                    record_schedule=True)
        m.run()
        sched = m.recorded_schedule
        # the first 4 steps stay on thread 0, then thread 1 runs
        assert sched[:5] == [0, 0, 0, 0, 1]

    def test_random_scheduler_validates_switch_prob(self):
        with pytest.raises(ValueError):
            RandomScheduler(seed=0, switch_prob=0.0)
        with pytest.raises(ValueError):
            RandomScheduler(seed=0, switch_prob=1.5)

    def test_round_robin_validates_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)
