"""CU timeline renderer tests."""

import pytest

from repro.core import OnlineSVD, render_cu_timeline
from repro.core.posteriori import CuLogRecord, PosterioriLog
from repro.machine import RandomScheduler
from repro.workloads import apache_log
from tests.conftest import COUNTER_LOCKED, run_with_svd


class TestRenderer:
    def test_empty_log(self):
        assert render_cu_timeline(PosterioriLog()) == "no CU records"

    def test_synthetic_records(self):
        log = PosterioriLog()
        log.add_cu_record(CuLogRecord(tid=0, uid=1, birth_seq=0, end_seq=50,
                                      read_blocks=(3,), write_blocks=(4,),
                                      reason="thread-end"))
        log.add_cu_record(CuLogRecord(tid=1, uid=2, birth_seq=25, end_seq=75,
                                      read_blocks=(), write_blocks=(3,),
                                      reason="stored-shared-load"))
        text = render_cu_timeline(log, chart_width=20)
        assert "thread 0" in text
        assert "thread 1" in text
        assert "cut:WrRd" in text
        assert "end" in text

    def test_bars_reflect_spans(self):
        log = PosterioriLog()
        log.add_cu_record(CuLogRecord(tid=0, uid=1, birth_seq=0, end_seq=100,
                                      read_blocks=(), write_blocks=(),
                                      reason="thread-end"))
        log.add_cu_record(CuLogRecord(tid=0, uid=2, birth_seq=0, end_seq=10,
                                      read_blocks=(), write_blocks=(),
                                      reason="thread-end"))
        text = render_cu_timeline(log, chart_width=40)
        lines = [l for l in text.splitlines() if "#" in l and "|" in l]
        long_bar = lines[0].split("|")[1].count("#")
        short_bar = lines[1].split("|")[1].count("#")
        assert long_bar > short_bar

    def test_real_run_names_shared_variables(self):
        workload = apache_log(writers=2, requests=4)
        svd = OnlineSVD(workload.program)
        machine = workload.make_machine(
            RandomScheduler(seed=3, switch_prob=0.4), observers=[svd])
        machine.run()
        text = render_cu_timeline(svd.log, workload.program)
        assert "outcnt" in text
        assert "local@" in text  # frame addresses labelled distinctly

    def test_truncation(self):
        _m, svd = run_with_svd(COUNTER_LOCKED,
                               [("worker", (30,)), ("worker", (30,))])
        text = render_cu_timeline(svd.log, max_cus_per_thread=2)
        assert "more" in text

    def test_every_thread_listed(self):
        _m, svd = run_with_svd(COUNTER_LOCKED,
                               [("worker", (5,)), ("worker", (5,))])
        text = render_cu_timeline(svd.log)
        assert "thread 0" in text and "thread 1" in text
