"""Offline three-pass algorithm tests (paper §4.1, Figures 5-6)."""

import pytest

from repro.core import OfflineSVD
from repro.lang import compile_source
from repro.machine.events import EV_LOAD, EV_STORE
from repro.pdg import build_dpdg
from repro.pdg.dpdg import TRUE_SHARED
from repro.serializability import is_serializable
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


def run_offline(source, threads, merge_control=True, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    prog = trace.program
    result = OfflineSVD(prog, merge_control=merge_control).run(trace)
    return trace, result


class TestCuFormation:
    def test_partition_covers_all_vertices(self):
        trace, result = run_offline(
            COUNTER_RACE, [("worker", (10,)), ("worker", (10,))])
        pdg = build_dpdg(trace)
        for tid in (0, 1):
            part = result.cus_of(tid)
            assert sorted(part.cu_of) == pdg.thread_vertices(tid)

    def test_no_shared_arc_inside_cu(self):
        """Figure 5's deactivation must enforce region-hypothesis rule 1."""
        trace, result = run_offline(
            COUNTER_RACE, [("worker", (10,)), ("worker", (10,))])
        pdg = build_dpdg(trace)
        for tid in (0, 1):
            part = result.cus_of(tid)
            for arc in pdg.thread_arcs(tid):
                if arc.kind == TRUE_SHARED:
                    assert part.cu_of[arc.src] != part.cu_of[arc.dst]

    def test_rmw_load_store_same_cu(self):
        trace, result = run_offline(
            COUNTER_RACE, [("worker", (6,)), ("worker", (6,))])
        counter_addr = trace.program.address_of("counter")
        part = result.cus_of(0)
        events = [e for e in trace.thread_trace(0)
                  if e.addr == counter_addr and e.kind in (EV_LOAD, EV_STORE)]
        for load, store in zip(events[::2], events[1::2]):
            assert part.cu_of[load.seq] == part.cu_of[store.seq]

    def test_cu_count_positive(self):
        _trace, result = run_offline(
            COUNTER_LOCKED, [("worker", (5,)), ("worker", (5,))])
        assert result.cu_count > 0


class TestViolationScan:
    def test_detects_race(self):
        _trace, result = run_offline(
            COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
            switch_prob=0.5)
        assert result.report.dynamic_count > 0
        # static sites are the two counter statements
        texts = {result.report.program.locs[v.loc].text
                 for v in result.report}
        assert texts <= {"int c = counter;", "counter = (c + 1);"}

    def test_violation_shape(self):
        _trace, result = run_offline(
            COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
            switch_prob=0.5)
        for v in result.report:
            assert v.detector == "svd-offline"
            assert v.tid != v.other_tid

    def test_offline_at_least_as_sensitive_as_online(self):
        """The offline scan checks the full CU window and all blocks, so
        whenever online SVD reports, offline must report too."""
        from repro.core import OnlineSVD
        prog = compile_source(COUNTER_RACE)
        from repro.machine import Machine, RandomScheduler
        from repro.trace import TraceRecorder
        for seed in range(4):
            svd = OnlineSVD(prog)
            rec = TraceRecorder(prog, 2)
            m = Machine(prog, [("worker", (15,)), ("worker", (15,))],
                        scheduler=RandomScheduler(seed=seed, switch_prob=0.5),
                        observers=[svd, rec])
            m.run()
            offline = OfflineSVD(prog).run(rec.trace())
            if svd.report.dynamic_count > 0:
                assert offline.report.dynamic_count > 0


class TestMergeControlKnob:
    def test_no_control_merge_gives_no_fewer_cus(self):
        """Merging via fewer arc kinds can only fragment CUs further."""
        trace, with_ctrl = run_offline(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        _t2, without_ctrl = run_offline(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))],
            merge_control=False)
        assert without_ctrl.cu_count >= with_ctrl.cu_count

    def test_true_only_merge_matches_online_spirit(self):
        """Without control merging, the locked counter is 2PL-clean in
        the CS window (conflicts only land in the post-CS tail, where the
        counter CU performs no further stores)."""
        trace, result = run_offline(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))],
            merge_control=False)
        assert result.report.dynamic_count == 0
