"""Stale-value, lock-order and hybrid detector tests (paper §8)."""

import pytest

from repro.detectors import (HybridRaceDetector, LockOrderDetector,
                             StaleValueDetector)
from repro.lang import compile_source
from repro.machine import (Machine, MachineStatus, RandomScheduler,
                           RoundRobinScheduler)
from repro.trace import TraceRecorder
from repro.workloads import bank_transfer
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program

TICKET = """
shared int ticket = 0;
lock m;
local int stats;
thread worker(int n) {
    int i = 0;
    while (i < n) {
        acquire(m);
        int mine = ticket;
        ticket = mine + 1;
        release(m);
        stats = stats + mine;
        i = i + 1;
    }
}
"""

DEADLOCK_PRONE = """
lock a; lock b;
shared int x;
thread t1(int n) { int i = 0; while (i < n) {
    acquire(a); acquire(b); x = x + 1; release(b); release(a);
    i = i + 1; } }
thread t2(int n) { int i = 0; while (i < n) {
    acquire(b); acquire(a); x = x + 1; release(a); release(b);
    i = i + 1; } }
"""


def trace_of(source, threads, scheduler=None, seed=1, switch=0.5,
             program=None):
    machine, trace = run_program(source, threads, seed=seed,
                                 switch_prob=switch, record=True,
                                 program=program)
    if scheduler is not None:
        prog = program if program is not None else compile_source(source)
        recorder = TraceRecorder(prog, len(threads))
        machine = Machine(prog, threads, scheduler=scheduler,
                          observers=[recorder])
        machine.run(max_steps=200_000)
        return machine, recorder.trace()
    return machine, trace


class TestStaleValue:
    def test_escaped_cs_value_reported(self):
        _m, trace = trace_of(TICKET, [("worker", (8,)), ("worker", (8,))])
        report = StaleValueDetector(trace.program).run(trace)
        texts = {trace.program.locs[v.loc].text for v in report}
        assert "stats = (stats + mine);" in texts

    def test_in_cs_uses_not_reported(self):
        _m, trace = trace_of(TICKET, [("worker", (8,)), ("worker", (8,))])
        report = StaleValueDetector(trace.program).run(trace)
        texts = {trace.program.locs[v.loc].text for v in report}
        assert "ticket = (mine + 1);" not in texts
        assert "int mine = ticket;" not in texts

    def test_locked_counter_clean(self):
        """All uses stay inside the critical section: nothing escapes."""
        _m, trace = trace_of(COUNTER_LOCKED,
                             [("worker", (10,)), ("worker", (10,))])
        report = StaleValueDetector(trace.program).run(trace)
        assert report.dynamic_count == 0

    def test_unlocked_program_has_nothing_to_report(self):
        """Without critical sections there are no protected values."""
        _m, trace = trace_of(COUNTER_RACE,
                             [("worker", (10,)), ("worker", (10,))])
        report = StaleValueDetector(trace.program).run(trace)
        assert report.dynamic_count == 0

    def test_static_dedup_per_site_and_lock(self):
        _m, trace = trace_of(TICKET, [("worker", (20,)), ("worker", (20,))])
        report = StaleValueDetector(trace.program).run(trace)
        keys = [(v.loc, v.address) for v in report]
        assert len(keys) == len(set(keys))

    def test_branch_on_stale_value_reported(self):
        source = """
        shared int size = 4;
        lock m;
        shared int out;
        thread t(int n) {
            int i = 0;
            while (i < n) {
                acquire(m);
                int snapshot = size;
                release(m);
                if (snapshot > 2) {
                    out = out + 1;
                }
                i = i + 1;
            }
        }
        thread other(int n) {
            int i = 0;
            while (i < n) {
                acquire(m);
                size = size + 1;
                release(m);
                i = i + 1;
            }
        }
        """
        _m, trace = trace_of(source, [("t", (8,)), ("other", (8,))])
        report = StaleValueDetector(trace.program).run(trace)
        texts = {trace.program.locs[v.loc].text for v in report}
        assert any("snapshot > 2" in t for t in texts)


class TestLockOrder:
    def test_consistent_order_clean(self):
        _m, trace = trace_of(COUNTER_LOCKED,
                             [("worker", (10,)), ("worker", (10,))])
        report = LockOrderDetector(trace.program).run(trace)
        assert report.dynamic_count == 0

    def test_opposite_order_reported_even_without_deadlocking(self):
        """Coarse quanta keep this run deadlock-free; the detector still
        finds the potential deadlock."""
        prog = compile_source(DEADLOCK_PRONE)
        recorder = TraceRecorder(prog, 2)
        machine = Machine(prog, [("t1", (5,)), ("t2", (5,))],
                          scheduler=RoundRobinScheduler(quantum=100),
                          observers=[recorder])
        machine.run()
        assert machine.status == MachineStatus.FINISHED  # got lucky
        report = LockOrderDetector(prog).run(recorder.trace())
        assert report.dynamic_count == 1
        assert report.violations[0].kind == "potential-deadlock"

    def test_ordered_bank_transfers_clean(self):
        workload = bank_transfer()
        prog = workload.program
        recorder = TraceRecorder(prog, len(workload.threads))
        machine = workload.make_machine(
            RandomScheduler(seed=2, switch_prob=0.5), observers=[recorder])
        machine.run()
        report = LockOrderDetector(prog).run(recorder.trace())
        assert report.dynamic_count == 0

    def test_edges_recorded_for_nesting(self):
        source = ("lock a; lock b; shared int x;"
                  "thread t() { acquire(a); acquire(b); x = 1;"
                  " release(b); release(a); }")
        _m, trace = trace_of(source, [("t", ())])
        detector = LockOrderDetector(trace.program)
        edges = detector.edges(trace)
        assert len(edges) == 1
        names = trace.program.lock_names
        assert names[edges[0].held] == "a"
        assert names[edges[0].acquired] == "b"


class TestHybrid:
    def test_real_race_confirmed(self):
        _m, trace = trace_of(COUNTER_RACE,
                             [("worker", (15,)), ("worker", (15,))])
        report = HybridRaceDetector(trace.program).run(trace)
        assert report.dynamic_count > 0
        assert all(v.kind == "confirmed-race" for v in report)

    def test_locked_program_clean(self):
        _m, trace = trace_of(COUNTER_LOCKED,
                             [("worker", (10,)), ("worker", (10,))])
        report = HybridRaceDetector(trace.program).run(trace)
        assert report.dynamic_count == 0

    def test_subset_of_frd(self):
        from repro.detectors import FrontierRaceDetector
        _m, trace = trace_of(COUNTER_RACE,
                             [("worker", (15,)), ("worker", (15,))])
        hybrid = HybridRaceDetector(trace.program).run(trace)
        frd = FrontierRaceDetector(trace.program).run(trace)
        assert hybrid.dynamic_count <= frd.dynamic_count

    def test_candidate_count(self):
        _m, trace = trace_of(COUNTER_RACE,
                             [("worker", (10,)), ("worker", (10,))])
        detector = HybridRaceDetector(trace.program)
        assert detector.candidate_count(trace) >= 1
