"""ISA-level unit tests: ALU semantics, program validation, disassembly."""

import pytest

from repro.isa.instructions import (
    INT_MAX, INT_MIN, Alu, Branch, Halt, Imm, Jump, Load, Reg, Store,
    evaluate_alu,
)
from repro.isa.program import Program, SourceLoc, ThreadSpec


class TestEvaluateAlu:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("+", 2, 3, 5),
        ("-", 2, 3, -1),
        ("*", -4, 3, -12),
        ("/", 7, 2, 3),
        ("/", -7, 2, -3),      # C-style truncation toward zero
        ("/", 7, -2, -3),
        ("%", 7, 2, 1),
        ("%", -7, 2, -1),      # sign follows dividend, C-style
        ("==", 3, 3, 1),
        ("!=", 3, 3, 0),
        ("<", 2, 3, 1),
        ("<=", 3, 3, 1),
        (">", 3, 2, 1),
        (">=", 2, 3, 0),
        ("&&", 2, 3, 1),
        ("&&", 0, 3, 0),
        ("||", 0, 0, 0),
        ("||", 0, 9, 1),
        ("&", 6, 3, 2),
        ("|", 6, 3, 7),
        ("^", 6, 3, 5),
    ])
    def test_operations(self, op, a, b, expected):
        assert evaluate_alu(op, a, b) == expected

    def test_division_by_zero(self):
        assert evaluate_alu("/", 5, 0) == 0
        assert evaluate_alu("%", 5, 0) == 0

    def test_c_style_truncation_identity(self):
        # (a/b)*b + a%b == a must hold for all sign combinations
        for a in (-7, -1, 0, 1, 7):
            for b in (-3, -2, 2, 3):
                q = evaluate_alu("/", a, b)
                r = evaluate_alu("%", a, b)
                assert q * b + r == a, (a, b)

    def test_division_is_exact_beyond_float_precision(self):
        # The mixed-sign path must not detour through float division,
        # which silently rounds once operands outgrow 2**53.
        exact = 2 ** 60 + 1
        assert evaluate_alu("/", -(exact * 3), 3) == -exact
        for a in (exact * 3 + 1, -(exact * 3 + 1), INT_MAX, INT_MIN + 1):
            for b in (-7, 7):
                q = evaluate_alu("/", a, b)
                r = evaluate_alu("%", a, b)
                assert q * b + r == a
                assert abs(r) < abs(b)
                assert r == 0 or (r < 0) == (a < 0)  # C-style sign

    def test_int64_wraparound(self):
        # Machine integers are 64-bit two's complement, like the C
        # programs the paper targets: a self-multiplying loop saturates
        # the register width instead of growing without bound.
        assert evaluate_alu("+", INT_MAX, 1) == INT_MIN
        assert evaluate_alu("-", INT_MIN, 1) == INT_MAX
        assert evaluate_alu("*", 2 ** 62, 4) == 0
        assert evaluate_alu("*", 2 ** 32 + 1, 2 ** 32) == 2 ** 32
        assert evaluate_alu("/", INT_MIN, -1) == INT_MIN  # the one / wrap
        value = 3
        for _ in range(64):
            value = evaluate_alu("*", value, value)
            assert INT_MIN <= value <= INT_MAX

    def test_in_range_results_never_wrap(self):
        for a in (-2, 0, 3, INT_MAX // 8, INT_MIN // 8):
            for b in (-3, 1, 5):
                for op in ("+", "-", "*"):
                    got = evaluate_alu(op, a, b)
                    want = {"+": a + b, "-": a - b, "*": a * b}[op]
                    assert got == want, (op, a, b)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            evaluate_alu("**", 2, 3)

    def test_alu_constructor_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Alu("<<", Imm(1), Imm(2), Reg(1))


class TestProgramValidation:
    def _program(self, code):
        prog = Program(code=code)
        prog.threads["t"] = ThreadSpec(name="t", entry=0, frame_words=1)
        return prog

    def test_valid_program(self):
        prog = self._program([Jump(1), Halt()])
        prog.validate()

    def test_branch_target_out_of_range(self):
        prog = self._program([Branch(Reg(1), 99), Halt()])
        with pytest.raises(ValueError):
            prog.validate()

    def test_entry_out_of_range(self):
        prog = self._program([Halt()])
        prog.threads["t"] = ThreadSpec(name="t", entry=5, frame_words=1)
        with pytest.raises(ValueError):
            prog.validate()


class TestProgramQueries:
    def test_address_of(self):
        prog = Program()
        prog.globals_layout["a"] = (4, 3)
        assert prog.address_of("a", 2) == 6
        with pytest.raises(IndexError):
            prog.address_of("a", 3)

    def test_name_of_address(self):
        prog = Program()
        prog.globals_layout["x"] = (0, 1)
        prog.globals_layout["a"] = (1, 4)
        assert prog.name_of_address(0) == "x"
        assert prog.name_of_address(3) == "a[2]"
        assert prog.name_of_address(99) == "@99"

    def test_loc_of(self):
        prog = Program(locs=[SourceLoc(3, 1, "x = 1;")])
        instr = Halt()
        instr.loc = 0
        assert "x = 1;" in str(prog.loc_of(instr))
        instr.loc = -1
        assert prog.loc_of(instr) is None

    def test_disassemble_mentions_source(self):
        prog = Program(code=[Load(Reg(1), Imm(0), loc=0), Halt()],
                       locs=[SourceLoc(1, 1, "x = y;")])
        text = prog.disassemble()
        assert "x = y;" in text
        assert "LOAD" in text

    def test_reconvergence_requires_branch(self):
        prog = Program(code=[Halt()])
        with pytest.raises(TypeError):
            prog.reconvergence_of_branch(0)


class TestOperandRepr:
    def test_reg_repr(self):
        assert repr(Reg(5)) == "r5"

    def test_imm_repr(self):
        assert repr(Imm(-3)) == "#-3"
