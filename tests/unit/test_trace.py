"""Trace recording, queries and serialization."""

import pytest

from repro.lang import compile_source
from repro.machine import EV_LOAD, EV_STORE, Machine, RandomScheduler
from repro.trace import Trace, TraceRecorder, conflicting
from tests.conftest import COUNTER_RACE, run_program


@pytest.fixture
def race_trace():
    machine, trace = run_program(COUNTER_RACE,
                                 [("worker", (10,)), ("worker", (10,))],
                                 seed=2, record=True)
    return machine, trace


class TestRecording:
    def test_events_in_seq_order(self, race_trace):
        _m, trace = race_trace
        seqs = [e.seq for e in trace]
        assert seqs == sorted(seqs)

    def test_thread_trace_is_subsequence(self, race_trace):
        _m, trace = race_trace
        t0 = trace.thread_trace(0)
        assert all(e.tid == 0 for e in t0)
        assert [e.seq for e in t0] == sorted(e.seq for e in t0)
        assert len(t0) + len(trace.thread_trace(1)) == len(trace)

    def test_memory_events_only_loads_stores(self, race_trace):
        _m, trace = race_trace
        for e in trace.memory_events():
            assert e.kind in (EV_LOAD, EV_STORE)
            assert e.addr >= 0

    def test_window_recording(self):
        prog = compile_source(COUNTER_RACE)
        recorder = TraceRecorder(prog, 2, start_seq=10, end_seq=50)
        m = Machine(prog, [("worker", (10,)), ("worker", (10,))],
                    scheduler=RandomScheduler(seed=2, switch_prob=0.4),
                    observers=[recorder])
        m.run()
        trace = recorder.trace()
        assert len(trace) == 40
        assert trace.events[0].seq == 10
        assert trace.events[-1].seq == 49

    def test_accesses_by_address_grouping(self, race_trace):
        _m, trace = race_trace
        by_addr = trace.accesses_by_address()
        counter_addr = trace.program.address_of("counter")
        # each of 20 iterations loads and stores the counter
        assert len(by_addr[counter_addr]) == 40


class TestConflicts:
    def test_conflicting_requires_different_threads(self, race_trace):
        _m, trace = race_trace
        mem = trace.memory_events()
        same_thread = [e for e in mem if e.tid == 0][:2]
        assert not conflicting(same_thread[0], same_thread[1])

    def test_read_read_not_conflicting(self):
        src = ("shared int x = 1; shared int r0; shared int r1;"
               "thread t(int tid) {"
               " if (tid == 0) { r0 = x; } else { r1 = x; } }")
        _m, trace = run_program(src, [("t", (0,)), ("t", (1,))], record=True)
        x_addr = trace.program.address_of("x")
        reads = [e for e in trace.memory_events()
                 if e.addr == x_addr and e.kind == EV_LOAD]
        assert len(reads) == 2
        assert not conflicting(reads[0], reads[1])

    def test_conflict_pairs_on_race(self, race_trace):
        _m, trace = race_trace
        pairs = list(trace.conflict_pairs())
        assert pairs  # racing counter accesses must conflict
        for early, late in pairs:
            assert early.seq < late.seq
            assert early.tid != late.tid
            assert early.is_write or late.is_write


class TestSerialization:
    def test_save_load_roundtrip(self, race_trace, tmp_path):
        _m, trace = race_trace
        path = str(tmp_path / "trace.jsonl")
        trace.save(path)
        loaded = Trace.load(path, trace.program)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.kind, a.seq, a.tid, a.pc, a.addr, a.value) == \
                (b.kind, b.seq, b.tid, b.pc, b.addr, b.value)
        assert loaded.n_threads == trace.n_threads

    def test_loaded_events_relink_instructions(self, race_trace, tmp_path):
        _m, trace = race_trace
        path = str(tmp_path / "trace.jsonl")
        trace.save(path)
        loaded = Trace.load(path, trace.program)
        for event in loaded:
            if event.pc >= 0:
                assert event.instr is trace.program.code[event.pc]
