"""Fault-injection subsystem tests: plans, the stream injector, engine
quarantine, worker faults and retries, and BER rollback storms.

The overarching oracle (mirrored by ``repro fuzz --faults``): any single
injected fault yields a *structured* degradation -- a quarantine record,
a salvage report, a retried task, a budget flag -- never an uncaught
exception and never a silently altered report from an untouched
component.
"""

import json

import pytest

import repro.faults as faults
import repro.obs as obs
from repro.ber import BerController
from repro.engine import DetectorEngine
from repro.faults import (CRASH_EXIT_CODE, Fault, FaultPlan, InjectedFault,
                          StreamInjector, apply_to_trace)
from repro.harness.pool import parallel_map
from repro.lang import compile_source
from repro.machine import MachineStatus
from repro.machine.machine import Machine
from repro.machine.scheduler import RandomScheduler
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def _event_tuples(events):
    return [(e.kind, e.seq, e.tid, e.pc, e.instr, e.addr, e.value,
             e.taken, e.target) for e in events]


def _keys(report):
    return [(v.seq, v.tid, v.loc, v.address, v.kind) for v in report]


def _record_trace(program, plan=None, seed=2, n=15):
    """One seeded run of COUNTER_RACE-shaped programs with the trace
    kept; ``plan`` installed for the duration when given."""
    with faults.install(plan):
        engine = DetectorEngine(program, ["svd"])
        machine = Machine(program, [("worker", (n,)), ("worker", (n,))],
                          scheduler=RandomScheduler(seed=seed,
                                                    switch_prob=0.5))
        result = engine.run_machine(machine, keep_trace=True)
    return result


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan([Fault("stream.drop", at=7),
                          Fault("analysis.raise", at=3, target="frd"),
                          Fault("stream.dup", at=9, count=4)], seed=11)
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded == plan
        # the file is plain sorted JSON -- hand-editable
        data = json.loads(path.read_text())
        assert data["version"] == FaultPlan.VERSION

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault("stream.explode", at=1)

    def test_analysis_fault_needs_target(self):
        with pytest.raises(ValueError, match="target"):
            Fault("analysis.raise", at=1)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Fault("stream.drop", at=-1)

    def test_newer_version_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            FaultPlan.from_json({"version": FaultPlan.VERSION + 1,
                                 "faults": []})

    def test_family_queries(self):
        plan = FaultPlan([Fault("stream.drop", at=1),
                          Fault("trace.corrupt", at=2),
                          Fault("worker.crash", at=3),
                          Fault("ber.storm", at=100, count=3)])
        assert [f.site for f in plan.stream_faults()] == ["stream.drop"]
        assert [f.site for f in plan.trace_faults()] == ["trace.corrupt"]
        assert plan.worker_fault_map() == {3: plan.faults[2]}
        assert plan.ber_storm_steps() == [100, 100, 100]

    def test_corruption_rng_is_position_pure(self):
        plan = FaultPlan(seed=5)
        a = plan.corruption_rng(42).getrandbits(32)
        assert plan.corruption_rng(42).getrandbits(32) == a
        assert plan.corruption_rng(43).getrandbits(32) != a

    def test_describe_lists_sites(self):
        plan = FaultPlan([Fault("ber.storm", at=10, count=2)], seed=1)
        assert "ber.storm @ 10" in plan.describe()


class TestStreamInjector:
    @pytest.fixture(scope="class")
    def clean(self):
        program = compile_source(COUNTER_RACE)
        return program, _record_trace(program).trace

    def test_drop_removes_one_event(self, clean):
        program, trace = clean
        faulted = apply_to_trace(trace, FaultPlan([Fault("stream.drop",
                                                         at=5)]))
        assert len(faulted) == len(trace) - 1
        expected = _event_tuples(trace)
        del expected[5]
        assert _event_tuples(faulted) == expected

    def test_dup_repeats_one_event(self, clean):
        program, trace = clean
        faulted = apply_to_trace(trace, FaultPlan([Fault("stream.dup",
                                                         at=5, count=2)]))
        assert len(faulted) == len(trace) + 2
        tuples = _event_tuples(faulted)
        assert tuples[5] == tuples[6] == tuples[7]

    def test_corrupt_mutates_only_the_target(self, clean):
        program, trace = clean
        faulted = apply_to_trace(trace,
                                 FaultPlan([Fault("stream.corrupt",
                                                  at=5)], seed=9))
        before, after = _event_tuples(trace), _event_tuples(faulted)
        assert len(after) == len(before)
        assert after[5] != before[5]
        assert after[:5] == before[:5] and after[6:] == before[6:]
        # same plan, same damage: corruption is seeded, not ambient
        again = apply_to_trace(trace,
                               FaultPlan([Fault("stream.corrupt",
                                                at=5)], seed=9))
        assert _event_tuples(again) == after

    def test_truncate_cuts_the_stream(self, clean):
        program, trace = clean
        faulted = apply_to_trace(trace,
                                 FaultPlan([Fault("stream.truncate",
                                                  at=20)]))
        assert len(faulted) == 20
        assert _event_tuples(faulted) == _event_tuples(trace)[:20]

    def test_live_machine_matches_trace_transform(self, clean):
        """The machine-level injector and the trace-level transform are
        the same function: a faulted live run records exactly the trace
        that faulting a clean recording produces."""
        program, trace = clean
        plan = FaultPlan([Fault("stream.drop", at=11),
                          Fault("stream.corrupt", at=30)], seed=4)
        live = _record_trace(program, plan=plan)
        assert _event_tuples(live.trace) == _event_tuples(
            apply_to_trace(trace, plan))

    def test_injector_not_installed_without_stream_faults(self):
        program = compile_source(COUNTER_LOCKED)
        plan = FaultPlan([Fault("worker.crash", at=0)])
        with faults.install(plan):
            machine = Machine(program, [("worker", (2,))],
                              scheduler=RandomScheduler(seed=0))
        assert machine._injector is None
        assert StreamInjector(FaultPlan([Fault("stream.drop",
                                               at=0)])) is not None


class TestEngineQuarantine:
    @pytest.fixture(scope="class")
    def program(self):
        return compile_source(COUNTER_RACE)

    def _run(self, program, plan, detectors=("svd", "frd")):
        with faults.install(plan):
            engine = DetectorEngine(program, list(detectors))
            machine = Machine(program,
                              [("worker", (15,)), ("worker", (15,))],
                              scheduler=RandomScheduler(seed=2,
                                                        switch_prob=0.5))
            return engine.run_machine(machine)

    def test_injected_raise_is_quarantined(self, program):
        baseline = self._run(program, None)
        plan = FaultPlan([Fault("analysis.raise", at=10, target="frd")])
        with obs.session(tracing=False) as handle:
            result = self._run(program, plan)
        assert result.degraded
        failure = result.failures["frd"]
        assert failure.analysis == "frd"
        assert failure.stage == "event"
        assert "InjectedFault" in failure.error
        # the innocent analysis is byte-for-byte unaffected
        assert _keys(result.report("svd")) == _keys(
            baseline.report("svd"))
        counters = handle.registry.snapshot()["counters"]
        assert counters["engine.analysis_quarantined"] == 1

    def test_quarantined_analysis_report_still_materializes(self, program):
        plan = FaultPlan([Fault("analysis.raise", at=0, target="frd")])
        result = self._run(program, plan)
        report = result.report("frd")
        assert report.dynamic_count == 0
        assert [f.analysis for f in report.failures] == ["frd"]

    def test_fault_against_absent_analysis_is_inert(self, program):
        plan = FaultPlan([Fault("analysis.raise", at=0,
                                target="not-attached")])
        result = self._run(program, plan, detectors=("svd",))
        assert not result.degraded
        assert result.failures == {}

    def test_run_trace_applies_stream_faults_once(self, program):
        """A multi-phase trace replay must see one consistently faulted
        stream, not a fresh injection per phase."""
        trace = _record_trace(program).trace
        plan = FaultPlan([Fault("stream.truncate", at=25)])
        with faults.install(plan):
            # offline is multi-phase; svd single-phase
            result = DetectorEngine(program,
                                    ["svd", "offline"]).run_trace(trace)
        assert not result.degraded
        assert result.end_seq == list(trace)[24].seq + 1


def fault_double(payload):
    return payload * 2


class TestWorkerFaults:
    def test_crash_fault_surfaces_exit_code(self):
        plan = FaultPlan([Fault("worker.crash", at=1)])
        with faults.install(plan):
            outcomes = parallel_map(fault_double, [1, 2, 3], workers=2)
        statuses = [status for status, _ in outcomes]
        assert statuses == ["ok", "error", "ok"]
        assert f"exitcode {CRASH_EXIT_CODE}" in outcomes[1][1]

    def test_crash_fault_recovers_with_retry(self):
        plan = FaultPlan([Fault("worker.crash", at=1)])
        with obs.session(tracing=False) as handle:
            with faults.install(plan):
                outcomes = parallel_map(fault_double, [1, 2, 3],
                                        workers=2, retries=1)
        assert [(s, v) for s, v in outcomes] == [("ok", 2), ("ok", 4),
                                                 ("ok", 6)]
        counters = handle.registry.snapshot()["counters"]
        assert counters["pool.task_retried"] == 1
        assert counters["pool.worker_crash"] == 1

    def test_hang_fault_recovers_with_timeout_and_retry(self):
        plan = FaultPlan([Fault("worker.hang", at=0)])
        with faults.install(plan):
            outcomes = parallel_map(fault_double, [5, 6], workers=2,
                                    timeout=1.0, retries=1)
        assert [(s, v) for s, v in outcomes] == [("ok", 10), ("ok", 12)]

    def test_slow_fault_just_delays(self):
        plan = FaultPlan([Fault("worker.slow", at=0, count=1)])
        with faults.install(plan):
            outcomes = parallel_map(fault_double, [7], workers=2)
        assert outcomes == [("ok", 14)]

    def test_serial_mode_ignores_worker_faults(self):
        # in-process execution cannot survive os._exit; the plan only
        # binds to forked workers
        plan = FaultPlan([Fault("worker.crash", at=0)])
        with faults.install(plan):
            outcomes = parallel_map(fault_double, [1, 2], workers=1)
        assert [s for s, _ in outcomes] == ["ok", "ok"]

    def test_hang_fault_without_retry_is_a_timeout_outcome(self):
        # the hang fires on attempt 0 only; with no retries the task
        # must surface as `timeout` (never `error`, never a stuck pool)
        plan = FaultPlan([Fault("worker.hang", at=0)])
        with faults.install(plan):
            outcomes = parallel_map(fault_double, [5, 6], workers=2,
                                    timeout=1.0)
        assert outcomes[0][0] == "timeout"
        assert "exceeded" in outcomes[0][1]
        assert outcomes[1] == ("ok", 12)

    def test_hang_fault_recovers_on_retry_within_deadline(self):
        # attempt 0 hangs, the watchdog timeout reclaims the worker,
        # and the retry (fault-free by the attempt-0 contract) finishes
        # well inside one extra per-task deadline
        import time as _time
        plan = FaultPlan([Fault("worker.hang", at=0)])
        started = _time.perf_counter()
        with obs.session(tracing=False) as handle:
            with faults.install(plan):
                outcomes = parallel_map(fault_double, [5, 6], workers=2,
                                        timeout=1.0, retries=1)
        elapsed = _time.perf_counter() - started
        assert outcomes == [("ok", 10), ("ok", 12)]
        counters = handle.registry.snapshot()["counters"]
        assert counters["pool.task_retried"] == 1
        assert elapsed < 30.0  # one timeout + one clean attempt, slack


class TestServeFaultSites:
    """The serve-level fault family: execution-indexed, worker-shaped."""

    def test_serve_sites_round_trip_and_map(self, tmp_path):
        from repro.faults import SERVE_SITES
        plan = FaultPlan([Fault("exec.stall", at=4),
                          Fault("exec.crash", at=7),
                          Fault("serve.slow_consumer", at=9, count=3),
                          Fault("worker.crash", at=1)])
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert [f.site for f in loaded.serve_faults()] == [
            "exec.stall", "exec.crash", "serve.slow_consumer"]
        assert sorted(loaded.serve_fault_map()) == [4, 7, 9]
        assert loaded.serve_fault_map()[9].count == 3
        # families stay disjoint: serve sites never leak into the
        # worker map and vice versa
        assert sorted(loaded.worker_fault_map()) == [1]
        assert set(SERVE_SITES) == {"exec.stall", "exec.crash",
                                    "serve.slow_consumer"}

    def test_unknown_serve_site_rejected(self):
        with pytest.raises(ValueError):
            Fault("exec.explode", at=0)


_FLAKY_STATE = {"failures_left": 0}


def flaky_task(payload):
    if _FLAKY_STATE["failures_left"] > 0:
        _FLAKY_STATE["failures_left"] -= 1
        raise RuntimeError("transient")
    return payload + 1


class TestRetryPolicy:
    def test_serial_retry_recovers_flaky_task(self):
        _FLAKY_STATE["failures_left"] = 1
        outcomes = parallel_map(flaky_task, [10], workers=1, retries=2)
        assert outcomes == [("ok", 11)]

    def test_serial_retry_budget_respected(self):
        _FLAKY_STATE["failures_left"] = 5
        outcomes = parallel_map(flaky_task, [10], workers=1, retries=2)
        status, error = outcomes[0]
        assert status == "error"
        assert "transient" in error


class TestBerStorms:
    def _run(self, plan=None, budget=8, n=40):
        program = compile_source(COUNTER_LOCKED)
        with faults.install(plan):
            controller = BerController(
                program, [("worker", (n,)), ("worker", (n,))],
                RandomScheduler(seed=5, switch_prob=0.4),
                checkpoint_interval=50, recovery_window=100,
                region_rollback_budget=budget)
            outcome = controller.run(max_steps=100_000)
        return outcome, controller.machine.read_global("counter")

    def test_storm_exhausts_budget_but_preserves_result(self):
        clean, final_clean = self._run()
        assert not clean.budget_exhausted and clean.rollbacks == 0
        plan = FaultPlan([Fault("ber.storm", at=300, count=12)])
        with obs.session(tracing=False) as handle:
            outcome, final = self._run(plan)
        assert outcome.budget_exhausted
        assert outcome.rollbacks >= 8
        assert outcome.status == MachineStatus.FINISHED
        # degraded to serial, but the program still ran to the same
        # correct final state
        assert final == final_clean == 80
        counters = handle.registry.snapshot()["counters"]
        assert counters["ber.budget_exhausted"] == 1

    def test_small_storm_stays_within_budget(self):
        plan = FaultPlan([Fault("ber.storm", at=300, count=3)])
        outcome, final = self._run(plan)
        assert not outcome.budget_exhausted
        assert outcome.rollbacks >= 3
        assert final == 80


class TestRuntimeScoping:
    def test_install_is_scoped_and_nestable(self):
        assert faults.active() is None
        outer = FaultPlan([Fault("stream.drop", at=0)])
        inner = FaultPlan([Fault("stream.dup", at=1)])
        with faults.install(outer):
            assert faults.active() is outer
            with faults.install(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_install_none_is_a_no_op(self):
        with faults.install(None):
            assert faults.active() is None
            assert not faults.enabled()
