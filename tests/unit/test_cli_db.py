"""The results-database CLI surface: ``--db`` recording on
run/campaign/fuzz/bench, ``repro bench --gate`` trend gating, the
``repro db`` subcommands, and the obs byte-identity contract."""

import json

import pytest

from repro.cli import main
from repro.resultsdb import config_fingerprint, iter_jsonl, open_db


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "results.db")


@pytest.fixture
def artefact(tmp_path):
    """A BENCH_engine.json that passes every built-in floor."""
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({
        "speedup": 1.61,
        "campaign": {"events_per_sec": 200_000},
    }))
    return str(path)


def regress(artefact, tmp_path):
    """A 2x-regressed copy of ``artefact`` under the same basename."""
    record = json.loads(open(artefact).read())
    record["speedup"] /= 2
    record["campaign"]["events_per_sec"] /= 2
    out = tmp_path / "slow" / "BENCH_engine.json"
    out.parent.mkdir()
    out.write_text(json.dumps(record))
    return str(out)


class TestRunRecording:
    def test_run_recorded_with_fingerprints(self, db_path, capsys):
        assert main(["run", "stringbuffer", "--seed", "1",
                     "--db", db_path]) == 1
        assert f"recorded run 1 in {db_path}" in capsys.readouterr().err
        with open_db(db_path) as db:
            record = db.get(1)
        assert record.kind == "run"
        assert record.label == "stringbuffer"
        assert record.status == "violations"
        assert record.violations > 0
        assert record.events > 0
        assert record.schedule_seed == 1
        assert record.detectors == ("svd",)
        assert record.violation_fingerprints
        assert all(f.startswith("svd:") for f
                   in record.violation_fingerprints)
        assert record.obs is None  # no --obs requested

    def test_run_with_obs_stores_snapshot(self, db_path, capsys):
        assert main(["run", "stringbuffer", "--obs",
                     "--db", db_path]) == 0
        with open_db(db_path) as db:
            record = db.latest()
        assert record.obs is not None
        assert "engine.runs" in record.obs["counters"]

    def test_same_flags_same_fingerprint_new_seed(self, db_path, capsys):
        main(["run", "stringbuffer", "--seed", "1", "--db", db_path])
        main(["run", "stringbuffer", "--seed", "2", "--db", db_path])
        main(["run", "queue-region", "--seed", "1", "--db", db_path])
        with open_db(db_path) as db:
            one, two, three = db.list_runs()
        assert one.fingerprint == two.fingerprint
        assert one.fingerprint != three.fingerprint
        assert (one.schedule_seed, two.schedule_seed) == (1, 2)


class TestCampaignRecording:
    ARGS = ["campaign", "--workloads", "stringbuffer", "--seeds", "2",
            "--max-steps", "30000"]

    def test_progress_db_and_byte_identity(self, db_path, tmp_path,
                                           capsys):
        metrics = str(tmp_path / "metrics.json")
        hb_path = str(tmp_path / "heartbeat.jsonl")
        assert main(self.ARGS + ["-j", "2", "--progress",
                                 "--db", db_path,
                                 "--heartbeat-out", hb_path,
                                 "--metrics-out", metrics]) == 1
        err = capsys.readouterr().err
        assert "[heartbeat]" in err
        assert "2/2 tasks" in err
        with open_db(db_path) as db:
            record = db.latest(kind="campaign")
        # the heartbeat stream was ingested at completion
        assert record.heartbeat["final"] is True
        assert record.heartbeat["completed"] == 2
        assert record.violations > 0
        assert record.events == record.heartbeat["events"]
        lines = open(hb_path).read().splitlines()
        assert json.loads(lines[-1]) == record.heartbeat
        # acceptance: db show --field obs is byte-identical to the
        # --metrics-out file
        assert main(["db", "show", "--field", "obs",
                     "--db", db_path]) == 0
        shown = capsys.readouterr().out
        assert shown == open(metrics).read()

    def test_db_without_obs_still_snapshots(self, db_path, capsys):
        assert main(self.ARGS + ["--quiet", "--db", db_path]) == 1
        with open_db(db_path) as db:
            record = db.latest()
        assert record.obs is not None
        assert record.obs["counters"]
        assert record.payload["runs"] == 2

    def test_progress_suppresses_per_run_lines(self, db_path, capsys):
        assert main(self.ARGS + ["--progress", "--db", db_path]) == 1
        err = capsys.readouterr().err
        assert "[1/2]" not in err and "[2/2]" not in err


class TestFuzzRecording:
    def test_fuzz_recorded(self, db_path, capsys):
        assert main(["fuzz", "--programs", "1", "--seeds", "1",
                     "--budget", "0", "--db", db_path]) == 0
        with open_db(db_path) as db:
            record = db.latest()
        assert record.kind == "fuzz"
        assert record.payload["stats"]["programs"] == 1
        assert record.events == record.payload["stats"]["probes"]


class TestBenchGate:
    def test_gate_requires_db(self, artefact, capsys):
        assert main(["bench", "--check", artefact, "--gate"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_insufficient_history_passes_and_records(self, artefact,
                                                     db_path, capsys):
        assert main(["bench", "--check", artefact, "--gate",
                     "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "trend --:" in out and "needs >= 2" in out
        with open_db(db_path) as db:
            assert db.count() == 1
            record = db.latest()
        assert record.kind == "bench"
        assert record.label == "BENCH_engine.json"
        assert record.payload["speedup"] == 1.61
        assert record.fingerprint == config_fingerprint(
            {"artefact": "BENCH_engine.json"})

    def test_synthetic_regression_fails_gate(self, artefact, db_path,
                                             tmp_path, capsys):
        # acceptance: two healthy recordings, then a 2x regression
        # passes the static floors it is given but fails the trend
        for _ in range(2):
            assert main(["bench", "--check", artefact, "--gate",
                         "--db", db_path]) == 0
        capsys.readouterr()
        slow = regress(artefact, tmp_path)
        assert main(["bench", "--check", slow, "--gate",
                     "--db", db_path, "--no-builtin",
                     "--floor", "speedup=0.1",
                     "--floor", "campaign.events_per_sec=1"]) == 1
        out = capsys.readouterr().out
        assert "ok: speedup" in out  # static floor passed
        assert "trend FAIL" in out  # the trend gate is what fired

    def test_no_record_leaves_history_untouched(self, artefact, db_path,
                                                capsys):
        assert main(["bench", "--check", artefact, "--gate",
                     "--db", db_path, "--no-record"]) == 0
        with open_db(db_path) as db:
            assert db.count() == 0

    def test_tolerance_flag_widens_band(self, artefact, db_path,
                                        tmp_path, capsys):
        for _ in range(2):
            main(["bench", "--check", artefact, "--db", db_path])
        slow = regress(artefact, tmp_path)
        args = ["bench", "--check", slow, "--gate", "--db", db_path,
                "--no-builtin", "--floor", "speedup=0.1",
                "--no-record"]
        assert main(args) == 1
        assert main(args + ["--tolerance", "0.6"]) == 0

    def test_record_without_gate(self, artefact, db_path, capsys):
        assert main(["bench", "--check", artefact,
                     "--db", db_path]) == 0
        assert "trend" not in capsys.readouterr().out
        with open_db(db_path) as db:
            assert db.count() == 1


class TestDbCommands:
    def seed(self, artefact, db_path, runs=2):
        for _ in range(runs):
            assert main(["bench", "--check", artefact,
                         "--db", db_path]) == 0

    def test_record_and_list(self, artefact, db_path, capsys):
        assert main(["db", "record", artefact, "--db", db_path]) == 0
        assert main(["db", "list", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "BENCH_engine.json" in out
        assert "bench" in out

    def test_record_unreadable_artefact(self, tmp_path, db_path, capsys):
        assert main(["db", "record", str(tmp_path / "nope.json"),
                     "--db", db_path]) == 2

    def test_record_bad_kind(self, artefact, db_path, capsys):
        assert main(["db", "record", artefact, "--db", db_path,
                     "--kind", "nope"]) == 2

    def test_trend_trajectory(self, artefact, db_path, capsys):
        # acceptance: the trend table renders a per-commit trajectory
        # from >= 2 recorded runs
        self.seed(artefact, db_path, runs=2)
        capsys.readouterr()
        assert main(["db", "trend", "BENCH_engine.json", "speedup",
                     "--db", db_path]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert "speedup" in lines[0]
        assert len([l for l in lines[1:] if "1.61" in l]) == 2

    def test_trend_no_points(self, artefact, db_path, capsys):
        self.seed(artefact, db_path, runs=1)
        capsys.readouterr()
        assert main(["db", "trend", "BENCH_engine.json", "nope.key",
                     "--db", db_path]) == 0
        assert "no recorded values" in capsys.readouterr().out

    def test_show_full_and_field(self, artefact, db_path, capsys):
        self.seed(artefact, db_path, runs=1)
        capsys.readouterr()
        assert main(["db", "show", "1", "--db", db_path]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["label"] == "BENCH_engine.json"
        assert main(["db", "show", "1", "--field", "payload",
                     "--db", db_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["speedup"] == 1.61

    def test_show_missing_field_and_run(self, artefact, db_path, capsys):
        self.seed(artefact, db_path, runs=1)
        assert main(["db", "show", "1", "--field", "obs",
                     "--db", db_path]) == 2
        assert main(["db", "show", "99", "--db", db_path]) == 2

    def test_missing_database_is_usage_error(self, db_path, capsys):
        assert main(["db", "list", "--db", db_path]) == 2
        assert "no results database" in capsys.readouterr().err

    def test_list_empty_database(self, artefact, db_path, capsys):
        self.seed(artefact, db_path, runs=1)
        capsys.readouterr()
        assert main(["db", "list", "--kind", "fuzz",
                     "--db", db_path]) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_export(self, artefact, db_path, tmp_path, capsys):
        self.seed(artefact, db_path, runs=2)
        out = str(tmp_path / "export.jsonl")
        assert main(["db", "export", out, "--db", db_path]) == 0
        records = list(iter_jsonl(out))
        assert len(records) == 2
        assert records[0]["payload"]["speedup"] == 1.61
