"""Observability substrate tests: registry semantics, deterministic
merge, span export round-trips, and the scoped runtime switchboard."""

import json

import pytest

import repro.obs as obs
from repro.engine import DetectorEngine
from repro.harness.runner import run_workload
from repro.machine.scheduler import RandomScheduler
from repro.obs import (DEFAULT_BOUNDS, MetricsRegistry, NULL_REGISTRY,
                       Tracer, atomic_write_text, merge_snapshots,
                       snapshot_percentile)
from repro.workloads import stringbuffer


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.snapshot()["counters"] == {"a": 5}

    def test_add_shorthand(self):
        registry = MetricsRegistry()
        registry.add("a")
        registry.add("a", 2)
        assert registry.snapshot()["counters"] == {"a": 3}

    def test_gauge_set_and_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7)
        gauge.set_max(3)  # lower: ignored
        assert registry.snapshot()["gauges"] == {"g": 7}
        gauge.set_max(9)
        assert registry.snapshot()["gauges"] == {"g": 9}

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(10, 100))
        for value in (5, 10, 50, 1000):
            histogram.observe(value)
        data = registry.snapshot()["histograms"]["h"]
        assert data["bounds"] == [10, 100]
        assert data["buckets"] == [2, 1, 1]  # <=10, <=100, overflow
        assert data["count"] == 4
        assert data["sum"] == 1065
        assert (data["min"], data["max"]) == (5, 1000)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", bounds=(100, 10))

    def test_histogram_bounds_conflict_detected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(3, 4))

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        for name in ("zebra", "alpha", "middle"):
            registry.add(name)
        assert list(registry.snapshot()["counters"]) == \
            ["alpha", "middle", "zebra"]

    def test_snapshot_is_json_safe_and_canonical(self):
        registry = MetricsRegistry()
        registry.add("c", 2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(42)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        assert json.loads(text) == registry.snapshot()


class TestMerge:
    def snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.add(name, value)
        return registry.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots([self.snap(a=1, b=2), self.snap(a=10)])
        assert merged["counters"] == {"a": 11, "b": 2}

    def test_gauges_take_max(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("peak").set(5)
        second.gauge("peak").set(3)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["gauges"] == {"peak": 5}

    def test_histograms_add_bucketwise(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", bounds=(10, 100)).observe(5)
        second.histogram("h", bounds=(10, 100)).observe(50)
        second.histogram("h", bounds=(10, 100)).observe(500)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        data = merged["histograms"]["h"]
        assert data["buckets"] == [1, 1, 1]
        assert data["count"] == 3
        assert (data["min"], data["max"]) == (5, 500)

    def test_histogram_bounds_mismatch_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", bounds=(1, 2)).observe(1)
        second.histogram("h", bounds=(3, 4)).observe(3)
        with pytest.raises(ValueError):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_merge_is_order_independent(self):
        snaps = [self.snap(a=i, b=2 * i) for i in range(5)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(backward, sort_keys=True)

    def test_merged_keys_sorted(self):
        merged = merge_snapshots([self.snap(zebra=1), self.snap(alpha=1)])
        assert list(merged["counters"]) == ["alpha", "zebra"]

    def test_empty_merge(self):
        assert merge_snapshots([]) == \
            {"counters": {}, "gauges": {}, "histograms": {}}


class TestTracer:
    def test_spans_record_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["outer"].start <= by_name["inner"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work", phase=1):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(str(path))
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["name"] == "work"
        assert records[0]["attrs"] == {"phase": 1}
        assert records[0]["dur_us"] >= 0

    def test_chrome_trace_pairs_match(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 6
        # every B must close with an E of the same name, stack-style
        stack = []
        for event in events:
            assert event["ph"] in ("B", "E")
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack.pop() == event["name"]
        assert stack == []

    def test_chrome_timestamps_nondecreasing(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("x"):
                pass
        events = tracer.chrome_trace_events(pid=1)
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)


class TestRuntime:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.metrics() is NULL_REGISTRY
        obs.add("ignored")  # must be a silent no-op
        with obs.span("ignored"):
            pass
        assert obs.metrics().snapshot()["counters"] == {}

    def test_session_activates_and_restores(self):
        with obs.session() as handle:
            assert obs.metrics_enabled() and obs.tracing_enabled()
            obs.add("hits")
            with obs.span("work"):
                pass
        assert not obs.enabled()
        assert handle.registry.snapshot()["counters"] == {"hits": 1}
        assert [s.name for s in handle.tracer.spans] == ["work"]

    def test_session_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.session():
                raise RuntimeError("boom")
        assert not obs.enabled()

    def test_metrics_scope_isolates_registry(self):
        with obs.session() as outer:
            obs.add("outer")
            with obs.metrics_scope() as inner:
                obs.add("inner")
                assert obs.tracing_enabled()  # tracer passes through
            obs.add("outer")
        assert inner.snapshot()["counters"] == {"inner": 1}
        assert outer.registry.snapshot()["counters"] == {"outer": 2}

    def test_metrics_only_session(self):
        with obs.session(tracing=False) as handle:
            assert obs.metrics_enabled()
            assert not obs.tracing_enabled()
        assert handle.tracer is None


class TestEngineIntegration:
    def run_engine(self, batched=True):
        workload = stringbuffer()
        machine = workload.make_machine(
            RandomScheduler(seed=0, switch_prob=0.3))
        return DetectorEngine(workload.program, ["svd", "frd"],
                              batched=batched).run_machine(
            machine, max_steps=50_000)

    def test_engine_metrics_recorded(self):
        with obs.session(tracing=False) as handle:
            result = self.run_engine()
        counters = handle.registry.snapshot()["counters"]
        assert counters["engine.runs"] == 1
        assert counters["engine.events.read"] == result.end_seq
        assert counters["engine.stream_passes"] == \
            result.stats.stream_passes
        # per-kind dispatch counts cover every event exactly once
        kinds = sum(value for name, value in counters.items()
                    if name.startswith("engine.events.kind."))
        assert kinds == result.end_seq
        assert counters["engine.analysis.svd.events"] > 0

    def test_batch_counters_match_per_event_dispatch(self):
        """The batched-delivery counters are an exact re-binning of the
        legacy per-event dispatch counts: on the same seed, the batch
        sums (total and per kind) equal what an unbatched run reads
        event by event."""
        with obs.session(tracing=False) as batched_handle:
            batched = self.run_engine()
        with obs.session(tracing=False) as legacy_handle:
            legacy = self.run_engine(batched=False)
        batched_counters = batched_handle.registry.snapshot()["counters"]
        legacy_counters = legacy_handle.registry.snapshot()["counters"]
        assert batched_counters["engine.batch_flushed"] >= 1
        assert (batched_counters["engine.batch_events"]
                == legacy_counters["engine.events.read"])
        per_kind_legacy = {name: value
                           for name, value in legacy_counters.items()
                           if name.startswith("engine.events.kind.")}
        assert per_kind_legacy
        for name, value in per_kind_legacy.items():
            kind = name.rsplit(".", 1)[1]
            assert (batched_counters["engine.batch_events.kind." + kind]
                    == value)
        # the batched run's own per-event accounting is unchanged too
        assert (batched_counters["engine.events.read"]
                == legacy_counters["engine.events.read"])
        # a per-event run emits no batch counters at all
        assert not any(name.startswith("engine.batch")
                       for name in legacy_counters)
        assert batched.end_seq == legacy.end_seq

    def test_engine_spans_recorded(self):
        with obs.session() as handle:
            self.run_engine()
        names = {s.name for s in handle.tracer.spans}
        assert "engine.phase" in names
        assert "machine.run" in names
        assert "analysis.finish" in names

    def test_engine_stats_on_report_without_obs(self):
        result = self.run_engine()
        report = result.report("svd")
        assert report.engine_stats is result.stats
        assert report.engine_stats.stream_passes >= 1

    def test_same_verdicts_with_and_without_obs(self):
        bare = self.run_engine()
        with obs.session():
            observed = self.run_engine()
        assert bare.end_seq == observed.end_seq
        for name in ("svd", "frd"):
            assert bare.report(name).dynamic_count == \
                observed.report(name).dynamic_count


class TestRunnerIntegration:
    def test_run_workload_metrics(self):
        with obs.session(tracing=False) as handle:
            result = run_workload(stringbuffer(), seed=0,
                                  max_steps=50_000)
        counters = handle.registry.snapshot()["counters"]
        assert counters["runner.runs"] == 1
        assert counters["machine.events"] == result.engine.end_seq
        assert "violations.svd.dynamic" in counters
        histograms = handle.registry.snapshot()["histograms"]
        assert histograms["run.instructions"]["count"] == 1

    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)


class TestMergeEdgeCases:
    def snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.add(name, value)
        return registry.snapshot()

    def test_empty_iterable_not_just_empty_list(self):
        assert merge_snapshots(iter(())) == \
            {"counters": {}, "gauges": {}, "histograms": {}}

    def test_single_snapshot_merges_to_itself(self):
        registry = MetricsRegistry()
        registry.add("a", 3)
        registry.gauge("g").set(7)
        registry.histogram("h", bounds=(10, 100)).observe(5)
        snapshot = registry.snapshot()
        merged = merge_snapshots([snapshot])
        assert merged == snapshot
        # ... without aliasing the input's mutable histogram entry
        merged["histograms"]["h"]["buckets"][0] = 99
        assert snapshot["histograms"]["h"]["buckets"][0] == 1

    def test_mismatched_bounds_error_names_the_histogram(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("lat", bounds=(1, 2)).observe(1)
        second.histogram("lat", bounds=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="lat"):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_same_name_across_metric_kinds_stays_separate(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.add("x", 5)
        second.gauge("x").set(9)
        second.histogram("x").observe(2)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"]["x"] == 5
        assert merged["gauges"]["x"] == 9
        assert merged["histograms"]["x"]["count"] == 1

    def test_missing_sections_tolerated(self):
        # a snapshot from an older producer may omit whole sections
        merged = merge_snapshots([{"counters": {"a": 1}}, self.snap(a=2)])
        assert merged["counters"] == {"a": 3}


class TestPercentiles:
    def histogram(self, values, bounds=(10, 100, 1000)):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=bounds)
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_is_zero(self):
        assert self.histogram([]).percentile(0.5) == 0.0

    def test_out_of_range_quantile_rejected(self):
        hist = self.histogram([5])
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_estimates_stay_within_observed_range(self):
        hist = self.histogram([5, 50, 500, 5000])
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert 5 <= hist.percentile(q) <= 5000

    def test_p50_lands_in_the_median_bucket(self):
        # 10 values in (10, 100], 2 above: p50 interpolates in bucket 1
        hist = self.histogram([50] * 10 + [500] * 2)
        p50 = hist.percentile(0.5)
        assert 10 < p50 <= 100

    def test_p95_prefers_the_tail_bucket(self):
        hist = self.histogram([5] * 10 + [900] * 10)
        assert hist.percentile(0.95) > 100

    def test_single_bucket_degenerate_is_truthful(self):
        # every observation is the same value: all percentiles equal it
        hist = self.histogram([42] * 7)
        for q in (0.1, 0.5, 0.99):
            assert hist.percentile(q) == 42

    def test_overflow_bucket_capped_at_observed_max(self):
        hist = self.histogram([5000, 6000, 7000])  # all overflow
        assert hist.percentile(0.99) <= 7000

    def test_snapshot_percentile_matches_live(self):
        hist = self.histogram([5, 50, 500])
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(10, 100, 1000))
        data = {"bounds": list(hist.bounds),
                "buckets": list(hist.buckets), "count": hist.count,
                "sum": hist.sum, "min": hist.min, "max": hist.max}
        assert snapshot_percentile(data, 0.5) == hist.percentile(0.5)

    def test_summary_renders_percentile_columns(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (5, 50, 500):
            hist.observe(value)
        text = obs.render_metrics_summary(registry.snapshot())
        header = [line for line in text.splitlines()
                  if "histogram" in line and "count" in line][0]
        assert "p50" in header and "p95" in header


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "first\n")
        atomic_write_text(str(path), "second\n")
        assert path.read_text() == "second\n"
        # no stray temp files left beside the destination
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failure_leaves_previous_content(self, tmp_path,
                                             monkeypatch):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "good\n")
        import repro.obs.io as io_mod
        monkeypatch.setattr(io_mod.os, "replace",
                            lambda *a: (_ for _ in ()).throw(
                                OSError("disk full")))
        with pytest.raises(OSError):
            atomic_write_text(str(path), "bad\n")
        assert path.read_text() == "good\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_metrics_out_uses_atomic_write(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "metrics.json"
        assert main(["run", "stringbuffer", "--max-steps", "20000",
                     "--metrics-out", str(out)]) in (0, 1)
        snapshot = json.loads(out.read_text())
        assert "counters" in snapshot
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]
