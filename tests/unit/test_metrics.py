"""Metrics classification tests."""

import pytest

from repro.core.report import Violation, ViolationReport
from repro.metrics import DetectorMetrics, classify_report


def violation(loc, other_loc=-1, seq=0):
    return Violation(detector="svd", seq=seq, tid=0, loc=loc, address=0,
                     kind="serializability-violation", other_loc=other_loc)


class TestClassification:
    def test_loc_match_is_tp(self):
        report = ViolationReport("svd")
        report.add(violation(loc=5))
        metrics = classify_report(report, bug_locs={5}, instructions=100)
        assert metrics.dynamic_tp == 1
        assert metrics.dynamic_fp == 0
        assert metrics.found_bug

    def test_other_loc_match_is_tp(self):
        report = ViolationReport("svd")
        report.add(violation(loc=1, other_loc=5))
        metrics = classify_report(report, bug_locs={5})
        assert metrics.dynamic_tp == 1

    def test_no_match_is_fp(self):
        report = ViolationReport("svd")
        report.add(violation(loc=1))
        metrics = classify_report(report, bug_locs={5})
        assert metrics.dynamic_fp == 1
        assert not metrics.found_bug

    def test_static_sets_disjoint_by_site(self):
        report = ViolationReport("svd")
        report.add(violation(loc=5))
        report.add(violation(loc=5, seq=1))
        report.add(violation(loc=9, seq=2))
        metrics = classify_report(report, bug_locs={5})
        assert metrics.static_tp == 1
        assert metrics.static_fp == 1

    def test_empty_bug_locs_everything_fp(self):
        report = ViolationReport("svd")
        report.add(violation(loc=5))
        metrics = classify_report(report, bug_locs=set())
        assert metrics.dynamic_fp == 1

    def test_per_million(self):
        report = ViolationReport("svd")
        report.add(violation(loc=1))
        metrics = classify_report(report, bug_locs=set(),
                                  instructions=2_000_000)
        assert metrics.dynamic_fp_per_million() == pytest.approx(0.5)

    def test_per_million_zero_instructions(self):
        metrics = DetectorMetrics("svd")
        assert metrics.dynamic_fp_per_million() == 0.0


class TestMerge:
    def test_merge_accumulates(self):
        a = DetectorMetrics("svd", dynamic_tp=1, dynamic_fp=2,
                            static_tp_locs={1}, static_fp_locs={2},
                            instructions=10)
        b = DetectorMetrics("svd", dynamic_tp=3, dynamic_fp=4,
                            static_tp_locs={1, 5}, static_fp_locs={6},
                            instructions=20)
        a.merge(b)
        assert a.dynamic_tp == 4
        assert a.dynamic_fp == 6
        assert a.static_tp == 2
        assert a.static_fp == 2
        assert a.instructions == 30

    def test_merge_rejects_different_detectors(self):
        a = DetectorMetrics("svd")
        b = DetectorMetrics("frd")
        with pytest.raises(ValueError):
            a.merge(b)
