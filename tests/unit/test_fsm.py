"""Block FSM tests (paper Figure 8 reconstruction)."""

import pytest

from repro.core.fsm import (
    IDLE, LOADED, LOADED_SHARED, SHARED_STATES, STATE_NAMES, STORED,
    STORED_SHARED, TRUE_DEP, WRITTEN_STATES, on_local_load, on_local_store,
    on_remote_access,
)

ALL_STATES = [IDLE, LOADED, STORED, TRUE_DEP, LOADED_SHARED, STORED_SHARED]


class TestLocalLoad:
    def test_idle_to_loaded(self):
        assert on_local_load(IDLE) == (LOADED, False)

    def test_loaded_stable(self):
        assert on_local_load(LOADED) == (LOADED, False)

    def test_stored_to_true_dep(self):
        assert on_local_load(STORED) == (TRUE_DEP, False)

    def test_true_dep_stable(self):
        assert on_local_load(TRUE_DEP) == (TRUE_DEP, False)

    def test_loaded_shared_stable(self):
        assert on_local_load(LOADED_SHARED) == (LOADED_SHARED, False)

    def test_stored_shared_cuts(self):
        """Figure 7 lines 5-6: load on Stored_Shared = shared dependence."""
        state, cut = on_local_load(STORED_SHARED)
        assert cut
        assert state == LOADED  # re-tracked fresh after the cut


class TestLocalStore:
    def test_idle_to_stored(self):
        assert on_local_store(IDLE) == (STORED, False)

    def test_loaded_to_stored(self):
        assert on_local_store(LOADED) == (STORED, False)

    def test_stored_stable(self):
        assert on_local_store(STORED) == (STORED, False)

    def test_loaded_shared_to_stored_shared(self):
        assert on_local_store(LOADED_SHARED) == (STORED_SHARED, False)

    def test_stored_shared_stable(self):
        assert on_local_store(STORED_SHARED) == (STORED_SHARED, False)

    def test_true_dep_sticky(self):
        assert on_local_store(TRUE_DEP) == (TRUE_DEP, False)

    def test_store_never_cuts(self):
        for state in ALL_STATES:
            _new, cut = on_local_store(state)
            assert not cut


class TestRemoteAccess:
    def test_loaded_becomes_shared(self):
        assert on_remote_access(LOADED) == (LOADED_SHARED, False)

    def test_stored_becomes_shared(self):
        assert on_remote_access(STORED) == (STORED_SHARED, False)

    def test_true_dep_cuts(self):
        """Figure 7 lines 30-31: remote access on True_Dep cuts."""
        state, cut = on_remote_access(TRUE_DEP)
        assert cut
        assert state == IDLE

    def test_shared_states_stable(self):
        assert on_remote_access(LOADED_SHARED) == (LOADED_SHARED, False)
        assert on_remote_access(STORED_SHARED) == (STORED_SHARED, False)

    def test_idle_stable(self):
        assert on_remote_access(IDLE) == (IDLE, False)


class TestStateSets:
    def test_shared_states(self):
        assert SHARED_STATES == {LOADED_SHARED, STORED_SHARED}

    def test_written_states_conflict_with_remote_reads(self):
        assert STORED in WRITTEN_STATES
        assert STORED_SHARED in WRITTEN_STATES
        assert TRUE_DEP in WRITTEN_STATES
        assert LOADED not in WRITTEN_STATES
        assert LOADED_SHARED not in WRITTEN_STATES

    def test_names_cover_all_states(self):
        for state in ALL_STATES:
            assert state in STATE_NAMES


class TestProseConstraints:
    """Every transition the paper's prose names, end to end."""

    def test_shared_inference_heuristic(self):
        """'A variable is shared if it is accessed by more than one thread
        after it is accessed by a CU and before the CU ends' -- local
        access then remote access lands in a shared state."""
        for first in (on_local_load, on_local_store):
            state, _ = first(IDLE)
            state, cut = on_remote_access(state)
            assert not cut
            assert state in SHARED_STATES

    def test_write_read_then_remote_is_shared_dependence(self):
        state, _ = on_local_store(IDLE)
        state, _ = on_local_load(state)
        assert state == TRUE_DEP
        _state, cut = on_remote_access(state)
        assert cut

    def test_write_remote_read_is_shared_dependence(self):
        state, _ = on_local_store(IDLE)
        state, _ = on_remote_access(state)
        assert state == STORED_SHARED
        _state, cut = on_local_load(state)
        assert cut

    def test_read_only_sharing_never_cuts(self):
        """Read-read sharing is harmless: no sequence of loads and remote
        accesses starting from a load can ever cut."""
        state = IDLE
        state, cut = on_local_load(state)
        for step in [on_remote_access, on_local_load, on_remote_access,
                     on_local_load]:
            state, cut = step(state)
            assert not cut
