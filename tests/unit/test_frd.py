"""Frontier Race Detector tests (paper §6.2)."""

import pytest

from repro.detectors import FrontierRaceDetector, frontier_races
from repro.lang import compile_source
from tests.conftest import (
    BENIGN_RACE, COUNTER_LOCKED, COUNTER_RACE, run_program,
)


def frd_on(source, threads, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    return trace, FrontierRaceDetector(trace.program).run(trace)


class TestHappensBefore:
    def test_unlocked_counter_races(self):
        _t, report = frd_on(COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
                            switch_prob=0.5)
        assert report.dynamic_count > 0
        assert report.static_count == 2  # the read and the write

    def test_locked_counter_clean(self):
        _t, report = frd_on(COUNTER_LOCKED,
                            [("worker", (20,)), ("worker", (20,))],
                            switch_prob=0.5)
        assert report.dynamic_count == 0

    def test_benign_race_reported(self):
        """FRD reports the Figure 1 benign races (its false positives)."""
        _t, report = frd_on(BENIGN_RACE, [("locker", (20,)), ("checker", (20,))],
                            switch_prob=0.5)
        assert report.dynamic_count > 0

    def test_fork_start_not_racy(self):
        """Initial values written before thread start do not race."""
        src = ("shared int x = 5; shared int r0; shared int r1;"
               "thread t(int tid) {"
               " if (tid == 0) { r0 = x; } else { r1 = x; } }")
        _t, report = frd_on(src, [("t", (0,)), ("t", (1,))])
        assert report.dynamic_count == 0

    def test_release_acquire_orders_accesses(self):
        src = ("shared int data; shared int done; lock m;"
               "thread producer() { acquire(m); data = 42; done = 1;"
               " release(m); }"
               "thread consumer() { int seen = 0; while (seen == 0) {"
               " acquire(m); seen = done; release(m); }"
               " acquire(m); int v = data; release(m); output(v); }")
        _t, report = frd_on(src, [("producer", ()), ("consumer", ())],
                            switch_prob=0.6)
        assert report.dynamic_count == 0

    def test_unlocked_flag_spin_is_racy(self):
        src = ("shared int data; shared int done;"
               "thread producer() { data = 42; done = 1; }"
               "thread consumer() { while (done == 0) { }"
               " output(data); }")
        _t, report = frd_on(src, [("producer", ()), ("consumer", ())],
                            switch_prob=0.6)
        assert report.dynamic_count > 0

    def test_race_pairs_cross_threads(self):
        _t, report = frd_on(COUNTER_RACE, [("worker", (10,)), ("worker", (10,))],
                            switch_prob=0.5)
        for v in report:
            assert v.tid != v.other_tid


class TestFrontierPass:
    def test_frontier_subset_of_conflicts(self):
        _m, trace = run_program(COUNTER_RACE,
                                [("worker", (15,)), ("worker", (15,))],
                                record=True, switch_prob=0.5)
        races = frontier_races(trace)
        assert races
        for race in races:
            assert race.first_tid != race.second_tid
            assert race.first_seq < race.second_seq

    def test_frontier_ignores_locks(self):
        """Pass 1 runs without synchronization knowledge: even the locked
        counter has frontier races (they would then be annotated away)."""
        _m, trace = run_program(COUNTER_LOCKED,
                                [("worker", (15,)), ("worker", (15,))],
                                record=True, switch_prob=0.5)
        races = frontier_races(trace)
        assert races

    def test_conflict_ordered_chain_collapses_frontier(self):
        """Once a conflict pair orders two threads, later conflicting
        accesses through the same chain are not frontier races."""
        src = ("shared int x;"
               "thread a() { x = 1; }"
               "thread b() { int v = x; int w = x; output(v + w); }")
        _m, trace = run_program(src, [("a", ()), ("b", ())],
                                record=True, seed=4, switch_prob=0.2)
        races = frontier_races(trace)
        x_addr = trace.program.address_of("x")
        x_races = [r for r in races if r.address == x_addr]
        # the write->first-read pair is a frontier race; the second read
        # is ordered by it and must not appear
        assert len(x_races) <= 1

    def test_no_threads_no_races(self):
        src = "shared int x; thread t() { x = 1; }"
        _m, trace = run_program(src, [("t", ())], record=True)
        assert frontier_races(trace) == []
