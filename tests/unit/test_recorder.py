"""Deterministic record/replay tests (the scenario II recorder)."""

import pytest

from repro.core import OnlineSVD
from repro.lang import compile_source
from repro.machine import (RandomScheduler, Recording, program_fingerprint,
                           record_execution, replay_execution)
from tests.conftest import COUNTER_RACE


@pytest.fixture
def recorded():
    program = compile_source(COUNTER_RACE)
    machine, recording = record_execution(
        program, [("worker", (20,)), ("worker", (20,))],
        RandomScheduler(seed=7, switch_prob=0.5))
    return program, machine, recording


class TestRecording:
    def test_replay_reproduces_final_state(self, recorded):
        program, machine, recording = recorded
        replayed = replay_execution(program, recording)
        assert replayed.read_global("counter") == \
            machine.read_global("counter")
        assert replayed.steps == machine.steps
        assert replayed.output == machine.output

    def test_replay_with_detector_attached(self, recorded):
        program, _machine, recording = recorded
        svd = OnlineSVD(program)
        replay_execution(program, recording, observers=[svd])
        assert svd.instructions > 0

    def test_two_replays_identical(self, recorded):
        program, _machine, recording = recorded
        a = replay_execution(program, recording)
        b = replay_execution(program, recording)
        assert a.memory == b.memory
        assert a.output == b.output

    def test_save_load_roundtrip(self, recorded, tmp_path):
        program, _machine, recording = recorded
        path = str(tmp_path / "run.rec")
        recording.save(path)
        loaded = Recording.load(path)
        assert loaded.schedule == recording.schedule
        assert loaded.threads == recording.threads
        assert loaded.fingerprint == recording.fingerprint
        replayed = replay_execution(program, loaded)
        assert replayed.steps == recording.steps

    def test_fingerprint_mismatch_rejected(self, recorded):
        _program, _machine, recording = recorded
        other = compile_source(
            "shared int x; thread worker(int n) { x = n; }")
        with pytest.raises(ValueError, match="fingerprint"):
            replay_execution(other, recording)

    def test_non_strict_allows_mismatch(self, recorded):
        """strict=False replays best-effort against a compatible program."""
        program, _machine, recording = recorded
        # recompiling the same source gives the same fingerprint...
        same = compile_source(COUNTER_RACE)
        assert program_fingerprint(same) == recording.fingerprint
        # ...and non-strict mode doesn't even check
        replay_execution(same, recording, strict=False)

    def test_fingerprint_stable_across_compiles(self):
        a = compile_source(COUNTER_RACE)
        b = compile_source(COUNTER_RACE)
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_fingerprint_differs_for_different_code(self):
        a = compile_source(COUNTER_RACE)
        b = compile_source(COUNTER_RACE.replace("c + 1", "c + 2"))
        assert program_fingerprint(a) != program_fingerprint(b)
