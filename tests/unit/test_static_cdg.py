"""Static CFG / postdominator / control-dependence tests."""

import pytest

from repro.isa.instructions import Branch
from repro.lang import compile_source
from repro.pdg.static_cdg import EXIT, ControlDependence, build_cfg, postdominators


def branch_pcs(prog):
    return [pc for pc, instr in enumerate(prog.code)
            if isinstance(instr, Branch)]


def pcs_for_line(prog, line):
    return [pc for pc, instr in enumerate(prog.code)
            if instr.loc >= 0 and prog.locs[instr.loc].line == line]


class TestCfg:
    def test_straight_line(self):
        prog = compile_source("shared int x; thread t() { x = 1; x = 2; }")
        succ = build_cfg(prog)
        # each non-control instruction has exactly one successor
        for pc, targets in succ.items():
            if pc == EXIT:
                continue
            assert 1 <= len(targets) <= 2

    def test_halt_goes_to_exit(self):
        prog = compile_source("thread t() { }")
        succ = build_cfg(prog)
        halt_pc = len(prog.code) - 1
        assert succ[halt_pc] == [EXIT]

    def test_branch_has_two_successors(self):
        prog = compile_source(
            "shared int x; thread t() { if (x) { x = 1; } }")
        succ = build_cfg(prog)
        bpc = branch_pcs(prog)[0]
        assert len(succ[bpc]) == 2


class TestPostdominators:
    def test_exit_postdominates_itself_only(self):
        prog = compile_source("thread t() { }")
        pdom = postdominators(build_cfg(prog))
        assert pdom[EXIT] == {EXIT}

    def test_straight_line_chain(self):
        prog = compile_source("shared int x; thread t() { x = 1; }")
        pdom = postdominators(build_cfg(prog))
        # first instruction is postdominated by every later one
        for later in range(1, len(prog.code)):
            assert later in pdom[0]

    def test_join_point_postdominates_branch(self):
        prog = compile_source(
            "shared int x; thread t() {"
            " if (x) { x = 1; } else { x = 2; } x = 3; }")
        pdom = postdominators(build_cfg(prog))
        bpc = branch_pcs(prog)[0]
        join = prog.reconvergence_of_branch(bpc)
        assert join in pdom[bpc]

    def test_then_block_does_not_postdominate_branch(self):
        prog = compile_source(
            "shared int x; thread t() { if (x) { x = 1; } x = 2; }")
        pdom = postdominators(build_cfg(prog))
        bpc = branch_pcs(prog)[0]
        then_pcs = pcs_for_line(prog, 1)  # single-line source: find stores
        # at least one then-block instruction is NOT a postdominator of b
        inside = [pc for pc in range(bpc + 1, prog.code[bpc].target)]
        assert inside
        assert any(pc not in pdom[bpc] for pc in inside)


class TestControlDependence:
    def test_then_block_controlled_by_branch(self):
        prog = compile_source(
            "shared int x; shared int y;"
            "thread t() { if (x) { y = 1; } y = 2; }")
        cdg = ControlDependence(prog)
        bpc = branch_pcs(prog)[0]
        inside = list(range(bpc + 1, prog.code[bpc].target))
        assert all(cdg.is_control_dependent(pc, bpc) for pc in inside)

    def test_code_after_join_not_controlled(self):
        prog = compile_source(
            "shared int x; shared int y;"
            "thread t() { if (x) { y = 1; } y = 2; }")
        cdg = ControlDependence(prog)
        bpc = branch_pcs(prog)[0]
        join = prog.code[bpc].target
        assert not cdg.is_control_dependent(join, bpc)

    def test_else_block_controlled(self):
        prog = compile_source(
            "shared int x; shared int y;"
            "thread t() { if (x) { y = 1; } else { y = 2; } }")
        cdg = ControlDependence(prog)
        bpc = branch_pcs(prog)[0]
        else_start = prog.code[bpc].target
        join = prog.reconvergence_of_branch(bpc)
        else_pcs = list(range(else_start, join))
        assert else_pcs
        assert all(cdg.is_control_dependent(pc, bpc) for pc in else_pcs)

    def test_loop_body_controlled_by_loop_branch(self):
        prog = compile_source(
            "shared int x; thread t() { while (x < 5) { x = x + 1; } }")
        cdg = ControlDependence(prog)
        bpc = branch_pcs(prog)[0]
        body = list(range(bpc + 1, prog.code[bpc].target - 1))
        assert body
        assert all(cdg.is_control_dependent(pc, bpc) for pc in body)

    def test_nested_if_immediate_controller(self):
        prog = compile_source(
            "shared int x; shared int y; shared int z;"
            "thread t() { if (x) { if (y) { z = 1; } } }")
        cdg = ControlDependence(prog)
        outer, inner = branch_pcs(prog)[:2]
        store_pcs = [pc for pc in range(inner + 1, prog.code[inner].target)]
        # the innermost store is controlled by the inner branch
        assert any(cdg.is_control_dependent(pc, inner) for pc in store_pcs)
        # and the inner branch is itself controlled by the outer branch
        assert cdg.is_control_dependent(inner, outer)

    def test_straight_line_has_no_controllers(self):
        prog = compile_source("shared int x; thread t() { x = 1; }")
        cdg = ControlDependence(prog)
        assert cdg.controllers(0) == set()
