"""The benchmark floor gate: spec parsing, dotted lookup, artefact
checks, and the ``repro bench`` CLI wrapper around them."""

import json

import pytest

from repro.cli import main
from repro.harness import bench_gate
from repro.harness.bench_gate import (FLOORS, FloorSpecError, check_file,
                                      check_record, lookup, parse_floor)


@pytest.fixture
def artefact(tmp_path):
    """A plausible BENCH_engine.json with a passing speedup."""
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({
        "events": 38484,
        "speedup": 1.61,
        "single_pass": {"seconds": 0.07, "events_per_sec": 1_100_000},
        "per_detector_refeed": {"seconds": 0.11},
        "campaign": {"events_per_sec": 200_000},
    }))
    return str(path)


class TestParseFloor:
    def test_simple(self):
        assert parse_floor("speedup=1.5") == ("speedup", 1.5)

    def test_dotted_key_and_spaces(self):
        assert parse_floor(" single_pass.events_per_sec =2e5 ") == (
            "single_pass.events_per_sec", 200_000.0)

    @pytest.mark.parametrize("spec", ["bogus", "=1.5", "speedup=fast"])
    def test_malformed(self, spec):
        with pytest.raises(FloorSpecError):
            parse_floor(spec)


class TestLookup:
    def test_top_level_and_nested(self):
        record = {"speedup": 1.6, "single_pass": {"seconds": 0.07}}
        assert lookup(record, "speedup") == 1.6
        assert lookup(record, "single_pass.seconds") == 0.07

    def test_missing_key(self):
        with pytest.raises(FloorSpecError):
            lookup({"speedup": 1.6}, "single_pass.seconds")

    def test_non_numeric_value(self):
        with pytest.raises(FloorSpecError):
            lookup({"detectors": ["svd"]}, "detectors")
        with pytest.raises(FloorSpecError):
            lookup({"ok": True}, "ok")  # bools are not gate values


class TestCheckRecord:
    def test_pass_and_fail(self):
        record = {"speedup": 1.6}
        (ok,) = check_record(record, {"speedup": 1.5})
        assert ok.ok and ok.value == 1.6 and ok.floor == 1.5
        (bad,) = check_record(record, {"speedup": 1.7})
        assert not bad.ok
        assert "FAIL" in bad.render()

    def test_floor_met_exactly_passes(self):
        (check,) = check_record({"speedup": 1.5}, {"speedup": 1.5})
        assert check.ok


class TestCheckFile:
    def test_builtin_floor_applies_by_basename(self, artefact):
        checks = check_file(artefact)
        assert [c.key for c in checks] == sorted(
            FLOORS["BENCH_engine.json"])
        assert all(c.ok for c in checks)

    def test_extra_floor_overrides_builtin(self, artefact):
        checks = check_file(artefact, extra_floors={"speedup": 2.0})
        assert not any(c.ok for c in checks if c.key == "speedup")

    def test_unknown_artefact_without_floors_is_error(self, tmp_path):
        path = tmp_path / "BENCH_other.json"
        path.write_text("{}")
        with pytest.raises(FloorSpecError):
            check_file(str(path))

    def test_unreadable_and_malformed(self, tmp_path):
        with pytest.raises(FloorSpecError):
            check_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "BENCH_engine.json"
        bad.write_text("not json")
        with pytest.raises(FloorSpecError):
            check_file(str(bad))

    def test_non_object_root(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("[1, 2]")
        with pytest.raises(FloorSpecError):
            check_file(str(path))


class TestBenchCommand:
    def test_pass_exits_zero(self, artefact, capsys):
        assert main(["bench", "--check", artefact]) == 0
        out = capsys.readouterr().out
        assert "ok: speedup = 1.61 (floor 1.5)" in out

    def test_floor_breach_exits_one(self, artefact, capsys):
        assert main(["bench", "--check", artefact,
                     "--floor", "speedup=9"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["bench", "--check",
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_floor_spec_is_usage_error(self, artefact, capsys):
        assert main(["bench", "--check", artefact,
                     "--floor", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_builtin_requires_explicit_floor(self, artefact, capsys):
        assert main(["bench", "--check", artefact, "--no-builtin"]) == 2
        assert main(["bench", "--check", artefact, "--no-builtin",
                     "--floor", "single_pass.events_per_sec=1e5"]) == 0

    def test_builtin_table_pins_engine_speedup(self):
        # the headline claim of the batched pipeline stays pinned here
        assert FLOORS["BENCH_engine.json"]["speedup"] == 1.5
        assert bench_gate.FLOORS is FLOORS
