"""The benchmark floor gate: spec parsing, dotted lookup, artefact
checks, and the ``repro bench`` CLI wrapper around them."""

import json

import pytest

from repro.cli import main
from repro.harness import bench_gate
from repro.harness.bench_gate import (FLOORS, FloorSpecError, check_file,
                                      check_record, lookup, parse_floor)


@pytest.fixture
def artefact(tmp_path):
    """A plausible BENCH_engine.json with a passing speedup."""
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({
        "events": 38484,
        "speedup": 1.61,
        "single_pass": {"seconds": 0.07, "events_per_sec": 1_100_000},
        "per_detector_refeed": {"seconds": 0.11},
        "campaign": {"events_per_sec": 200_000},
    }))
    return str(path)


class TestParseFloor:
    def test_simple(self):
        assert parse_floor("speedup=1.5") == ("speedup", 1.5)

    def test_dotted_key_and_spaces(self):
        assert parse_floor(" single_pass.events_per_sec =2e5 ") == (
            "single_pass.events_per_sec", 200_000.0)

    @pytest.mark.parametrize("spec", ["bogus", "=1.5", "speedup=fast"])
    def test_malformed(self, spec):
        with pytest.raises(FloorSpecError):
            parse_floor(spec)


class TestLookup:
    def test_top_level_and_nested(self):
        record = {"speedup": 1.6, "single_pass": {"seconds": 0.07}}
        assert lookup(record, "speedup") == 1.6
        assert lookup(record, "single_pass.seconds") == 0.07

    def test_missing_key(self):
        with pytest.raises(FloorSpecError):
            lookup({"speedup": 1.6}, "single_pass.seconds")

    def test_non_numeric_value(self):
        with pytest.raises(FloorSpecError):
            lookup({"detectors": ["svd"]}, "detectors")
        with pytest.raises(FloorSpecError):
            lookup({"ok": True}, "ok")  # bools are not gate values


class TestCheckRecord:
    def test_pass_and_fail(self):
        record = {"speedup": 1.6}
        (ok,) = check_record(record, {"speedup": 1.5})
        assert ok.ok and ok.value == 1.6 and ok.floor == 1.5
        (bad,) = check_record(record, {"speedup": 1.7})
        assert not bad.ok
        assert "FAIL" in bad.render()

    def test_floor_met_exactly_passes(self):
        (check,) = check_record({"speedup": 1.5}, {"speedup": 1.5})
        assert check.ok


class TestCheckFile:
    def test_builtin_floor_applies_by_basename(self, artefact):
        checks = check_file(artefact)
        assert [c.key for c in checks] == sorted(
            FLOORS["BENCH_engine.json"])
        assert all(c.ok for c in checks)

    def test_extra_floor_overrides_builtin(self, artefact):
        checks = check_file(artefact, extra_floors={"speedup": 2.0})
        assert not any(c.ok for c in checks if c.key == "speedup")

    def test_unknown_artefact_without_floors_is_error(self, tmp_path):
        path = tmp_path / "BENCH_other.json"
        path.write_text("{}")
        with pytest.raises(FloorSpecError):
            check_file(str(path))

    def test_unreadable_and_malformed(self, tmp_path):
        with pytest.raises(FloorSpecError):
            check_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "BENCH_engine.json"
        bad.write_text("not json")
        with pytest.raises(FloorSpecError):
            check_file(str(bad))

    def test_non_object_root(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("[1, 2]")
        with pytest.raises(FloorSpecError):
            check_file(str(path))


class TestBenchCommand:
    def test_pass_exits_zero(self, artefact, capsys):
        assert main(["bench", "--check", artefact]) == 0
        out = capsys.readouterr().out
        assert "ok: speedup = 1.61 (floor 1.5)" in out

    def test_floor_breach_exits_one(self, artefact, capsys):
        assert main(["bench", "--check", artefact,
                     "--floor", "speedup=9"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["bench", "--check",
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_floor_spec_is_usage_error(self, artefact, capsys):
        assert main(["bench", "--check", artefact,
                     "--floor", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_builtin_requires_explicit_floor(self, artefact, capsys):
        assert main(["bench", "--check", artefact, "--no-builtin"]) == 2
        assert main(["bench", "--check", artefact, "--no-builtin",
                     "--floor", "single_pass.events_per_sec=1e5"]) == 0

    def test_builtin_table_pins_engine_speedup(self):
        # the headline claim of the batched pipeline stays pinned here
        assert FLOORS["BENCH_engine.json"]["speedup"] == 1.5
        assert bench_gate.FLOORS is FLOORS


class TestLoadArtefactAndFloorsFor:
    def test_load_artefact_round_trips(self, artefact):
        record = bench_gate.load_artefact(artefact)
        assert record["speedup"] == 1.61

    def test_floors_for_overlays_extra_on_builtin(self):
        floors = bench_gate.floors_for("BENCH_engine.json",
                                       extra_floors={"speedup": 9.0,
                                                     "extra.key": 1.0})
        assert floors["speedup"] == 9.0  # extra wins
        assert floors["campaign.events_per_sec"] == \
            FLOORS["BENCH_engine.json"]["campaign.events_per_sec"]
        assert floors["extra.key"] == 1.0

    def test_floors_for_without_builtin(self):
        floors = bench_gate.floors_for("BENCH_engine.json",
                                       extra_floors={"speedup": 2.0},
                                       use_builtin=False)
        assert floors == {"speedup": 2.0}

    def test_floors_for_empty_is_an_error(self):
        with pytest.raises(FloorSpecError, match="no floors apply"):
            bench_gate.floors_for("BENCH_unknown.json")
        with pytest.raises(FloorSpecError):
            bench_gate.floors_for("BENCH_engine.json", use_builtin=False)


class TestBenchCommandEdgeCases:
    @pytest.mark.parametrize("spec", ["bogus", "=1.5", "speedup=fast",
                                      " =2"])
    def test_malformed_floor_specs(self, artefact, spec, capsys):
        assert main(["bench", "--check", artefact, "--floor", spec]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dotted_key_missing_from_artefact(self, artefact, capsys):
        assert main(["bench", "--check", artefact,
                     "--floor", "campaign.missing.deeply=1"]) == 2
        assert "no key" in capsys.readouterr().err

    def test_non_numeric_gated_value(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "speedup": "fast",
            "campaign": {"events_per_sec": 200_000}}))
        assert main(["bench", "--check", str(path)]) == 2
        assert "not a number" in capsys.readouterr().err

    def test_no_builtin_gates_only_explicit_floors(self, tmp_path,
                                                   capsys):
        # an artefact that would fail the builtin table passes when
        # only the explicit floor applies
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "speedup": 0.5,
            "campaign": {"events_per_sec": 1}}))
        assert main(["bench", "--check", str(path)]) == 1
        assert main(["bench", "--check", str(path), "--no-builtin",
                     "--floor", "speedup=0.4"]) == 0
        out = capsys.readouterr().out
        assert "campaign.events_per_sec" not in out.splitlines()[-1]
