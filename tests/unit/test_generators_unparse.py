"""Tests for input generators and the statement unparser."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_source
from repro.lang.unparse import unparse_expr, unparse_stmt
from repro.workloads.generators import (
    init_list, interleave_tables, lcg_table, zipf_table,
)


class TestGenerators:
    def test_lcg_table_bounds(self):
        table = lcg_table(seed=1, count=200, low=3, high=9)
        assert len(table) == 200
        assert all(3 <= v <= 9 for v in table)

    def test_lcg_table_deterministic(self):
        assert lcg_table(5, 50, 0, 100) == lcg_table(5, 50, 0, 100)
        assert lcg_table(5, 50, 0, 100) != lcg_table(6, 50, 0, 100)

    def test_lcg_table_validates_range(self):
        with pytest.raises(ValueError):
            lcg_table(1, 10, 5, 4)

    def test_zipf_table_bounds(self):
        table = zipf_table(seed=2, count=300, n_objects=10)
        assert len(table) == 300
        assert all(0 <= v < 10 for v in table)

    def test_zipf_is_skewed(self):
        """Object 0 must be the most popular by a clear margin."""
        table = zipf_table(seed=2, count=2000, n_objects=20, skew=1.2)
        counts = [table.count(i) for i in range(20)]
        assert counts[0] == max(counts)
        assert counts[0] > 3 * (sum(counts[10:]) / 10 + 1)

    def test_zipf_validates_objects(self):
        with pytest.raises(ValueError):
            zipf_table(1, 10, 0)

    def test_init_list_rendering(self):
        assert init_list([1, -2, 3]) == "{1, -2, 3}"

    def test_interleave_tables(self):
        assert interleave_tables([[1, 2], [3, 4]]) == [1, 2, 3, 4]


def _stmts(body):
    return parse_source("thread t() { %s }" % body).threads[0].body


class TestUnparse:
    def test_expressions_roundtrip_structure(self):
        stmt = _stmts("x = (a + b) * c[i] - -d;")[0]
        text = unparse_expr(stmt.value)
        assert "a + b" in text
        assert "c[i]" in text

    def test_assign(self):
        assert unparse_stmt(_stmts("x = 1;")[0]) == "x = 1;"

    def test_array_assign(self):
        assert unparse_stmt(_stmts("a[i + 1] = 0;")[0]) == "a[(i + 1)] = 0;"

    def test_var_decl(self):
        assert unparse_stmt(_stmts("int x = 5;")[0]) == "int x = 5;"
        assert unparse_stmt(_stmts("int b[4];")[0]) == "int b[4];"

    def test_if_head_only(self):
        text = unparse_stmt(_stmts("if (x > 0) { x = 1; }")[0])
        assert text == "if ((x > 0))"

    def test_while_head(self):
        text = unparse_stmt(_stmts("while (x) { x = 0; }")[0])
        assert text == "while (x)"

    def test_for_head(self):
        text = unparse_stmt(
            _stmts("for (int i = 0; i < 3; i = i + 1) { }")[0])
        assert "for" in text and "(i < 3)" in text

    def test_lock_statements(self):
        body = _stmts("x = 0;")  # placeholder to build lock stmts by hand
        stmt = ast.LockStmt(action="acquire", lock_name="m")
        assert unparse_stmt(stmt) == "acquire(m);"

    def test_assert_output_memcpy(self):
        assert unparse_stmt(_stmts("assert(x == 1);")[0]) == \
            "assert((x == 1));"
        assert unparse_stmt(_stmts("output(7);")[0]) == "output(7);"
        text = unparse_stmt(_stmts("memcpy(d, 0, s, 2, n);")[0])
        assert text.startswith("memcpy(d, 0, s, 2, n")

    def test_unknown_nodes_rejected(self):
        with pytest.raises(TypeError):
            unparse_expr(object())
        with pytest.raises(TypeError):
            unparse_stmt(object())
