"""Campaign checkpoint/resume: the journal, fingerprinting, and the
byte-identity guarantee -- an interrupted campaign resumed at any worker
count produces exactly the report an uninterrupted run would have.
"""

import json
import os

import pytest

import repro.faults as faults
from repro.faults import Fault, FaultPlan
from repro.harness.campaign import (CampaignResult, CampaignSpec,
                                    ConfigSpec, WorkloadSpec, run_campaign)
from repro.harness.journal import (COMMIT_NAME, CampaignJournal,
                                   JournalError, spec_fingerprint)

FAST = ConfigSpec(max_steps=30_000)


def small_spec(seeds=2, **kwargs):
    return CampaignSpec(
        workloads=[WorkloadSpec(name="stringbuffer"),
                   WorkloadSpec(name="queue-region")],
        configs=[FAST], seeds=seeds, **kwargs)


def journal_lines(directory):
    with open(os.path.join(directory, "journal.jsonl")) as fh:
        return fh.read().splitlines()


class TestFingerprint:
    def test_stable_for_same_matrix(self):
        assert spec_fingerprint(small_spec()) == \
            spec_fingerprint(small_spec())

    def test_sensitive_to_matrix_identity(self):
        base = spec_fingerprint(small_spec())
        assert spec_fingerprint(small_spec(seeds=3)) != base
        assert spec_fingerprint(small_spec(master_seed=1)) != base

    def test_insensitive_to_execution_policy(self):
        """Timeout/retry/worker knobs must not invalidate a journal --
        resuming with a longer timeout is the whole point."""
        base = spec_fingerprint(small_spec())
        assert spec_fingerprint(small_spec(task_timeout=99.0)) == base
        assert spec_fingerprint(small_spec(task_retries=5,
                                           retry_backoff=1.0)) == base


class TestJournalFile:
    def test_campaign_writes_one_record_per_task(self, tmp_path):
        jdir = str(tmp_path / "j")
        report = run_campaign(small_spec(), workers=1, journal_dir=jdir)
        lines = journal_lines(jdir)
        header = json.loads(lines[0])
        assert header["format"] == "repro-campaign-journal"
        assert header["fingerprint"] == spec_fingerprint(small_spec())
        assert len(lines) - 1 == len(report.results) == 4

    def test_results_round_trip_exactly(self, tmp_path):
        jdir = str(tmp_path / "j")
        report = run_campaign(small_spec(), workers=1, journal_dir=jdir)
        by_index = {r.index: r for r in report.results}
        for line in journal_lines(jdir)[1:]:
            loaded = CampaignResult.from_json(json.loads(line))
            assert loaded == by_index[loaded.index]

    def test_existing_journal_requires_resume(self, tmp_path):
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        with pytest.raises(JournalError, match="already exists"):
            run_campaign(small_spec(), workers=1, journal_dir=jdir)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        with pytest.raises(JournalError, match="different campaign"):
            run_campaign(small_spec(seeds=3), workers=1,
                         journal_dir=jdir, resume=True)

    def test_non_journal_file_rejected(self, tmp_path):
        jdir = tmp_path / "j"
        jdir.mkdir()
        (jdir / "journal.jsonl").write_text('{"format": "something"}\n')
        with pytest.raises(JournalError, match="not a campaign journal"):
            run_campaign(small_spec(), workers=1, journal_dir=str(jdir),
                         resume=True)


class TestCommitMarker:
    """The v2 append-fsync-commit protocol: the marker is the durable
    truth, anything beyond it is discardable in-flight state."""

    def _marker(self, jdir):
        with open(os.path.join(jdir, COMMIT_NAME)) as fh:
            return json.loads(fh.read())

    def test_marker_tracks_every_committed_record(self, tmp_path):
        jdir = str(tmp_path / "j")
        report = run_campaign(small_spec(), workers=1, journal_dir=jdir)
        marker = self._marker(jdir)
        assert marker["format"] == "repro-campaign-journal-commit"
        assert marker["records"] == len(report.results) == 4
        path = os.path.join(jdir, "journal.jsonl")
        assert marker["length"] == os.path.getsize(path)
        # the committed prefix is whole lines, every one of them JSON
        with open(path, "rb") as fh:
            blob = fh.read(marker["length"])
        assert blob.endswith(b"\n")
        for line in blob.splitlines():
            json.loads(line)

    def test_torn_tail_beyond_marker_is_dropped(self, tmp_path):
        """A SIGKILL mid-append leaves a torn final line past the
        marker; resume must ignore it entirely."""
        reference = run_campaign(small_spec(), workers=1)
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        with open(os.path.join(jdir, "journal.jsonl"), "ab") as fh:
            fh.write(b'{"index": 99, "status": "ok", "truncat')
        ran = []
        resumed = run_campaign(small_spec(), workers=1, journal_dir=jdir,
                               resume=True,
                               on_result=lambda r: ran.append(r.index))
        assert ran == []
        assert resumed.render_metrics() == reference.render_metrics()

    def test_uncommitted_records_rerun_and_tail_truncated(self, tmp_path):
        """Rolling the marker back makes the later records in-flight
        state: resume re-runs those tasks, and the first new append
        truncates the stale tail away before writing."""
        reference = run_campaign(small_spec(), workers=1)
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        lines = journal_lines(jdir)
        committed = sum(len(line) + 1 for line in lines[:3])  # header + 2
        from repro.obs.io import atomic_write_text
        atomic_write_text(
            os.path.join(jdir, COMMIT_NAME),
            json.dumps({"format": "repro-campaign-journal-commit",
                        "length": committed, "records": 2}) + "\n")
        ran = []
        resumed = run_campaign(small_spec(), workers=1, journal_dir=jdir,
                               resume=True,
                               on_result=lambda r: ran.append(r.index))
        assert sorted(ran) == [2, 3]
        assert resumed.render_metrics() == reference.render_metrics()
        # the journal is whole again and the marker covers all of it
        assert len(journal_lines(jdir)) - 1 == 4
        marker = self._marker(jdir)
        assert marker["records"] == 4
        assert marker["length"] == os.path.getsize(
            os.path.join(jdir, "journal.jsonl"))

    def test_v1_journal_without_marker_still_resumes(self, tmp_path):
        """Pre-marker journals load whole-file (tolerating a torn final
        line), so existing journals survive the protocol upgrade."""
        reference = run_campaign(small_spec(), workers=1)
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        os.unlink(os.path.join(jdir, COMMIT_NAME))
        ran = []
        resumed = run_campaign(small_spec(), workers=1, journal_dir=jdir,
                               resume=True,
                               on_result=lambda r: ran.append(r.index))
        assert ran == []
        assert resumed.render_metrics() == reference.render_metrics()


class TestResumeIdentity:
    def _truncate_journal(self, jdir, keep_records):
        path = os.path.join(jdir, "journal.jsonl")
        lines = journal_lines(jdir)
        with open(path, "w") as fh:
            fh.write("\n".join(lines[:1 + keep_records]) + "\n")

    @pytest.mark.parametrize("keep,resume_workers", [(1, 1), (2, 2),
                                                     (3, 1)])
    def test_interrupted_resume_is_byte_identical(self, tmp_path, keep,
                                                  resume_workers):
        reference = run_campaign(small_spec(), workers=1)
        jdir = str(tmp_path / "j")
        run_campaign(small_spec(), workers=1, journal_dir=jdir)
        # simulate a kill after ``keep`` journaled results
        self._truncate_journal(jdir, keep)
        resumed = run_campaign(small_spec(), workers=resume_workers,
                               journal_dir=jdir, resume=True)
        assert len(resumed.results) == len(reference.results)
        assert resumed.render_metrics() == reference.render_metrics()
        by_index = {r.index: r for r in resumed.results}
        for ref in reference.results:
            assert by_index[ref.index] == ref
        # the journal is whole again after the resume
        assert len(journal_lines(jdir)) - 1 == len(reference.results)

    def test_fully_journaled_campaign_runs_nothing(self, tmp_path):
        jdir = str(tmp_path / "j")
        first = run_campaign(small_spec(), workers=1, journal_dir=jdir)
        ran = []
        resumed = run_campaign(small_spec(), workers=1, journal_dir=jdir,
                               resume=True,
                               on_result=lambda r: ran.append(r.index))
        assert ran == []
        assert resumed.render_metrics() == first.render_metrics()


class TestRetryIntegration:
    def test_worker_crash_fault_recovered_by_retry(self, tmp_path):
        """A campaign task whose worker crashes is retried (the fault
        fires only on the first attempt) and the merged report matches a
        fault-free run."""
        reference = run_campaign(small_spec(), workers=1)
        plan = FaultPlan([Fault("worker.crash", at=1)])
        with faults.install(plan):
            report = run_campaign(small_spec(task_retries=1), workers=2)
        assert all(r.ok for r in report.results)
        assert report.render_metrics() == reference.render_metrics()

    def test_without_retries_the_crash_is_an_error(self, tmp_path):
        plan = FaultPlan([Fault("worker.crash", at=1)])
        with faults.install(plan):
            report = run_campaign(small_spec(), workers=2)
        errors = report.errors
        assert len(errors) == 1
        assert errors[0].index == 1
        assert "exitcode 23" in errors[0].error
