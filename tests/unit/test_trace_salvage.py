"""Trace framing, located load errors, and the salvaging reader."""

import json
import zlib

import pytest

from repro.engine import DetectorEngine
from repro.faults import Fault, FaultPlan, corrupt_trace_file
from repro.lang import compile_source
from repro.machine.machine import Machine
from repro.machine.scheduler import RandomScheduler
from repro.trace import SalvageReport, Trace, TraceLoadError
from tests.conftest import COUNTER_RACE


@pytest.fixture(scope="module")
def recorded():
    """A real recorded trace plus its program."""
    program = compile_source(COUNTER_RACE)
    machine = Machine(program, [("worker", (12,)), ("worker", (12,))],
                      scheduler=RandomScheduler(seed=3, switch_prob=0.5))
    result = DetectorEngine(program, ["svd"]).run_machine(machine,
                                                          keep_trace=True)
    return program, result.trace


def _tuples(trace):
    return [(e.kind, e.seq, e.tid, e.pc, e.addr, e.value, e.taken,
             e.target) for e in trace]


class TestFraming:
    def test_v2_round_trip(self, recorded, tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        loaded = Trace.load(path, program)
        assert _tuples(loaded) == _tuples(trace)
        assert loaded.n_threads == trace.n_threads

    def test_v2_records_are_length_crc_framed(self, recorded, tmp_path):
        program, trace = recorded
        path = tmp_path / "t.trace"
        trace.save(str(path))
        lines = path.read_bytes().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == 2
        assert header["n_events"] == len(trace)
        length, crc, payload = lines[1].split(b":", 2)
        assert int(length) == len(payload)
        assert int(crc, 16) == zlib.crc32(payload)

    def test_v1_files_still_load(self, recorded, tmp_path):
        """The pre-framing format (no version, bare JSON records) must
        stay readable forever."""
        program, trace = recorded
        path = tmp_path / "v1.trace"
        with open(path, "w") as fh:
            fh.write(json.dumps({"format": "repro-trace",
                                 "n_threads": trace.n_threads,
                                 "n_events": len(trace)}) + "\n")
            for e in trace:
                fh.write(json.dumps([e.kind, e.seq, e.tid, e.pc, e.addr,
                                     e.value, int(e.taken), e.target])
                         + "\n")
        loaded = Trace.load(str(path), program)
        assert _tuples(loaded) == _tuples(trace)


class TestStrictErrors:
    def test_corrupt_record_error_is_located(self, recorded, tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        corrupt_trace_file(path, FaultPlan([Fault("trace.corrupt",
                                                  at=10)], seed=1))
        with pytest.raises(TraceLoadError) as exc_info:
            Trace.load(path, program)
        err = exc_info.value
        assert err.path == path
        assert err.record_index == 10
        assert err.byte_offset > 0
        assert "record 10" in str(err)
        assert path in str(err)

    def test_truncated_file_reports_missing_records(self, recorded,
                                                    tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        corrupt_trace_file(path, FaultPlan([Fault("trace.truncate",
                                                  at=20)]))
        # the torn record itself fails first, precisely located
        with pytest.raises(TraceLoadError, match="record 20"):
            Trace.load(path, program)

    def test_short_file_reports_missing_records(self, recorded, tmp_path):
        program, trace = recorded
        path = tmp_path / "t.trace"
        trace.save(str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:21]))  # header + 20 whole records
        with pytest.raises(TraceLoadError,
                           match=f"ends after 20 of {len(trace)}"):
            Trace.load(str(path), program)

    def test_garbage_header_is_located(self, recorded, tmp_path):
        program, _trace = recorded
        path = tmp_path / "bad.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceLoadError) as exc_info:
            Trace.load(str(path), program)
        assert exc_info.value.byte_offset == 0
        assert exc_info.value.record_index == -1


class TestSalvage:
    def test_clean_file_salvages_clean(self, recorded, tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        loaded, report = Trace.salvage_load(path, program)
        assert report.clean
        assert report.records_read == len(trace)
        assert report.records_skipped == report.records_lost == 0
        assert _tuples(loaded) == _tuples(trace)

    def test_corrupt_record_is_skipped_and_resynced(self, recorded,
                                                    tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        corrupt_trace_file(path, FaultPlan([Fault("trace.corrupt",
                                                  at=10)], seed=1))
        loaded, report = Trace.salvage_load(path, program)
        assert not report.clean
        assert report.records_read == len(trace) - 1
        assert report.records_skipped == 1
        assert report.records_lost == 0
        # every surviving record is intact, in order
        expected = _tuples(trace)
        del expected[10]
        assert _tuples(loaded) == expected
        assert "1 skipped" in report.describe()

    def test_truncation_counts_lost_records(self, recorded, tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        corrupt_trace_file(path, FaultPlan([Fault("trace.truncate",
                                                  at=20)]))
        loaded, report = Trace.salvage_load(path, program)
        assert report.records_read == 20
        assert report.records_skipped == 1  # the torn line
        assert report.records_lost == len(trace) - 21
        assert _tuples(loaded) == _tuples(trace)[:20]

    def test_destroyed_header_still_salvages_records(self, recorded,
                                                     tmp_path):
        program, trace = recorded
        path = tmp_path / "t.trace"
        trace.save(str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"\x00garbage\n"
        path.write_bytes(b"".join(lines))
        loaded, report = Trace.salvage_load(str(path), program)
        assert not report.header_ok
        assert report.records_read == len(trace)
        # thread count inferred from the surviving events
        assert loaded.n_threads == trace.n_threads

    def test_salvaged_trace_is_analyzable(self, recorded, tmp_path):
        """The point of salvage: detectors still run over the
        recovered prefix."""
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        corrupt_trace_file(path, FaultPlan([Fault("trace.corrupt",
                                                  at=5)], seed=2))
        loaded, report = Trace.salvage_load(path, program)
        result = DetectorEngine(program, ["svd", "frd"]).run_trace(loaded)
        assert not result.degraded
        assert result.report("frd") is not None


class TestCorruptTraceFile:
    def test_corruption_is_deterministic(self, recorded, tmp_path):
        program, trace = recorded
        a, b = str(tmp_path / "a.trace"), str(tmp_path / "b.trace")
        trace.save(a)
        trace.save(b)
        plan = FaultPlan([Fault("trace.corrupt", at=7)], seed=9)
        assert corrupt_trace_file(a, plan) == 1
        assert corrupt_trace_file(b, plan) == 1
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_position_past_eof_is_inert(self, recorded, tmp_path):
        program, trace = recorded
        path = str(tmp_path / "t.trace")
        trace.save(path)
        plan = FaultPlan([Fault("trace.corrupt", at=10 ** 6)])
        assert corrupt_trace_file(path, plan) == 0
        Trace.load(path, program)  # untouched
