"""Trace query toolkit tests."""

import pytest

from repro.machine.events import EV_LOAD, EV_STORE
from repro.trace import TraceQuery
from repro.workloads import mysql_tablelock
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


@pytest.fixture(scope="module")
def query():
    workload = mysql_tablelock(ops=5)
    _machine, trace = run_program(workload.source, workload.threads,
                                  seed=1, switch_prob=0.5, record=True,
                                  program=workload.program)
    return TraceQuery(trace)


class TestSummaries:
    def test_variable_summary_counts(self, query):
        summaries = query.variable_summaries()
        addr = query.resolve("tot_lock")
        summary = summaries[addr]
        assert summary.reads > 0
        assert summary.writes > 0
        assert summary.shared
        assert summary.first_seq <= summary.last_seq

    def test_shared_variables_sorted_by_traffic(self, query):
        shared = query.shared_variables()
        assert shared
        traffic = [s.reads + s.writes for s in shared]
        assert traffic == sorted(traffic, reverse=True)
        assert all(s.shared for s in shared)

    def test_private_variables_excluded_from_shared(self, query):
        shared_names = {s.name for s in query.shared_variables()}
        assert not any(name.startswith("@") and False for name in shared_names)
        # frame addresses (locals) must not appear as shared
        for summary in query.shared_variables():
            assert summary.address < query.program.shared_words

    def test_thread_summary(self, query):
        summary = query.thread_summary()
        assert set(summary) == {0, 1, 2, 3}
        for counts in summary.values():
            assert counts.get("LOAD", 0) + counts.get("STORE", 0) > 0


class TestHistories:
    def test_history_in_order_and_filtered(self, query):
        events = query.history("tot_lock")
        assert events
        assert all(e.addr == query.resolve("tot_lock") for e in events)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)

    def test_history_limit(self, query):
        assert len(query.history("tot_lock", limit=3)) == 3

    def test_locks_held_at(self, query):
        # find a locker's guarded access and check the lock is reported
        guarded = [e for e in query.history("tot_lock")
                   if query.program.locs[e.loc].text == "int t = tot_lock;"]
        assert guarded
        event = guarded[0]
        held = query.locks_held_at(event.seq, event.tid)
        lock_addr = next(iter(query.program.lock_names))
        assert lock_addr in held

    def test_unlocked_access_reports_no_locks(self, query):
        unguarded = [e for e in query.history("tot_lock")
                     if "== 0" in query.program.locs[e.loc].text]
        assert unguarded
        event = unguarded[0]
        assert query.locks_held_at(event.seq, event.tid) == set()

    def test_conflicts_on_variable(self, query):
        pairs = query.conflicts_on("tot_lock")
        assert pairs
        for early, late in pairs:
            assert early.seq < late.seq
            assert early.tid != late.tid

    def test_find_statements(self, query):
        events = query.find_statements("tot_lock = (t + 1)")
        assert events
        texts = {query.program.locs[e.loc].text for e in events}
        assert texts == {"tot_lock = (t + 1);"}


class TestRendering:
    def test_render_history_mentions_locks_and_values(self, query):
        text = query.render_history("tot_lock", limit=5)
        assert "holding[internal_lock]" in text
        assert "value=" in text
        assert "more accesses" in text

    def test_render_shared_report(self, query):
        text = query.render_shared_report()
        assert "tot_lock" in text
        assert "threads=" in text
