"""CLI tests."""

import pytest

from repro.cli import main


@pytest.fixture
def msp_file(tmp_path):
    path = tmp_path / "prog.msp"
    path.write_text(
        "shared int x = 0;\n"
        "thread t(int n) { int i = 0; while (i < n) {"
        " x = x + 1; i = i + 1; } output(x); }\n")
    return str(path)


class TestRun:
    def test_run_svd(self, capsys):
        assert main(["run", "mysql-tablelock", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "svd: 0 dynamic reports" in out
        assert "a-posteriori log" in out

    def test_run_all_detectors(self, capsys):
        # apache is buggy: violations reported -> exit 1
        assert main(["run", "apache", "--seed", "3",
                     "--detector", "all"]) == 1
        out = capsys.readouterr().out
        assert "svd:" in out
        assert "frd:" in out

    def test_run_fixed_variant(self, capsys):
        assert main(["run", "apache", "--fixed", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "patched" in out

    def test_run_fixed_unsupported(self, capsys):
        assert main(["run", "pgsql", "--fixed"]) == 2

    def test_run_frd(self, capsys):
        # FRD reports the benign races -> exit 1
        assert main(["run", "mysql-tablelock", "--detector", "frd",
                     "--seed", "1"]) == 1
        assert "frd:" in capsys.readouterr().out

    def test_run_precise(self, capsys):
        assert main(["run", "queue-region", "--detector", "precise"]) == 0
        assert "svd-precise:" in capsys.readouterr().out

    @pytest.mark.parametrize("detector", ["lockset", "atomizer", "offline"])
    def test_run_other_detectors(self, detector, capsys):
        # each reports something on mysql-tablelock's benign races
        assert main(["run", "mysql-tablelock", "--detector", detector]) == 1
        assert "dynamic reports" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonexistent"])


class TestExec:
    def test_exec_with_threads(self, msp_file, capsys):
        assert main(["exec", msp_file, "--thread", "t:5",
                     "--thread", "t:5", "--svd"]) == 0
        out = capsys.readouterr().out
        assert "status: finished" in out
        assert "svd:" in out

    def test_exec_missing_file(self, capsys):
        assert main(["exec", "/does/not/exist.msp"]) == 2

    def test_exec_compile_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.msp"
        bad.write_text("thread t() { undeclared = 1; }")
        assert main(["exec", str(bad)]) == 2
        assert "compile error" in capsys.readouterr().err

    def test_exec_needs_threads_when_parameterised(self, msp_file, capsys):
        assert main(["exec", msp_file]) == 2

    def test_exec_reports_crash(self, tmp_path, capsys):
        prog = tmp_path / "crash.msp"
        prog.write_text("thread t() { assert(0); }")
        assert main(["exec", str(prog)]) == 0
        assert "CRASH" in capsys.readouterr().out


class TestCompile:
    def test_listing(self, msp_file, capsys):
        assert main(["compile", msp_file]) == 0
        out = capsys.readouterr().out
        assert "LOAD" in out or "STORE" in out

    def test_stats(self, msp_file, capsys):
        assert main(["compile", msp_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "frame words" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/does/not/exist.msp"]) == 2


class TestHarnessCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_overhead(self, capsys):
        assert main(["overhead", "mysql-tablelock", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "with SVD" in out


class TestCampaignCmd:
    ARGS = ["campaign", "--workloads", "stringbuffer,queue-region",
            "--seeds", "2", "--max-steps", "30000", "--quiet"]

    # the buggy workloads report violations, so a clean sweep exits 1

    def test_serial_campaign(self, capsys):
        assert main(self.ARGS + ["--workers", "1"]) == 1
        out = capsys.readouterr().out
        assert "Campaign: 4 runs" in out
        assert "stringbuffer" in out and "queue-region" in out

    def test_parallel_matches_serial_output(self, capsys):
        assert main(self.ARGS + ["--workers", "1"]) == 1
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--workers", "2"]) == 1
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_table2_rendering(self, capsys):
        assert main(self.ARGS + ["--table2"]) == 1
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["campaign", "--workloads", "nope"]) == 2

    def test_unknown_config(self, capsys):
        assert main(["campaign", "--workloads", "stringbuffer",
                     "--configs", "nope"]) == 2


class TestObsFlags:
    def test_run_obs_summary(self, capsys):
        assert main(["run", "stringbuffer", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "metrics: counters" in out
        assert "engine.runs" in out
        assert "spans:" in out

    def test_run_engine_line_without_obs(self, capsys):
        assert main(["run", "stringbuffer"]) == 0
        out = capsys.readouterr().out
        assert "stream pass(es)" in out

    def test_run_metrics_out(self, tmp_path, capsys):
        import json
        path = tmp_path / "metrics.json"
        assert main(["run", "stringbuffer",
                     "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["runner.runs"] == 1

    def test_run_trace_out_chrome(self, tmp_path, capsys):
        import json
        path = tmp_path / "trace.json"
        assert main(["run", "stringbuffer", "--trace-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
        assert begins and len(begins) == len(ends)

    def test_run_trace_out_jsonl(self, tmp_path, capsys):
        import json
        path = tmp_path / "spans.jsonl"
        assert main(["run", "stringbuffer", "--trace-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines and all("name" in json.loads(line) for line in lines)

    def test_campaign_obs_metrics_out(self, tmp_path, capsys):
        import json
        path = tmp_path / "campaign.json"
        assert main(["campaign", "--workloads", "stringbuffer",
                     "--seeds", "2", "--max-steps", "30000", "--quiet",
                     "-j", "2", "--metrics-out", str(path)]) == 1
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["runner.runs"] == 2
        assert snapshot["counters"]["pool.tasks.ok"] == 2

    def test_fuzz_obs(self, capsys):
        assert main(["fuzz", "--budget", "0", "--programs", "2",
                     "--seeds", "1", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "fuzz.programs" in out


class TestFuzzCmd:
    def test_program_capped_fuzz(self, capsys):
        assert main(["fuzz", "--budget", "0", "--programs", "6",
                     "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "6 programs" in out
        assert "online-vs-replay divergences  : 0" in out

    def test_save_and_rediscover_corpus(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        assert main(["fuzz", "--budget", "0", "--programs", "10",
                     "--seeds", "2", "--save-corpus", corpus]) == 0
        assert "saved" in capsys.readouterr().out
        assert main(["fuzz", "--budget", "0", "--programs", "10",
                     "--seeds", "2", "--corpus", corpus]) == 0
        out = capsys.readouterr().out
        assert "rediscovered" in out

    def test_missing_corpus_dir(self, capsys):
        assert main(["fuzz", "--budget", "0", "--programs", "2",
                     "--corpus", "/does/not/exist"]) == 2
