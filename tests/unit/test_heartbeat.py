"""Campaign heartbeat telemetry: accumulation, rate limiting, the
JSONL stream, rendering, and the pool's ``monitor`` status feed."""

import io
import json

from repro.harness.heartbeat import CampaignHeartbeat
from repro.harness.pool import PoolStatus, WorkerStatus, parallel_map


class FakeMetrics:
    def __init__(self, dynamic_total):
        self.dynamic_total = dynamic_total


class FakeResult:
    """Just the fields ``task_done`` reads off a CampaignResult."""

    def __init__(self, ok=True, instructions=1000, svd=2, frd=None,
                 extra=()):
        self.ok = ok
        self.instructions = instructions
        self.svd = FakeMetrics(svd)
        self.frd = FakeMetrics(frd) if frd is not None else None
        self.extra_metrics = {name: FakeMetrics(n) for name, n in extra}


def doubler(payload):
    return payload * 2


class TestAccumulation:
    def test_ok_result_counts_events_and_violations(self):
        hb = CampaignHeartbeat(total=4, interval=0.0)
        hb.task_done(FakeResult(instructions=500, svd=1, frd=2,
                                extra=[("lockset", 3)]))
        assert hb.completed == 1
        assert hb.events == 500
        assert hb.violations == 6  # svd 1 + frd 2 + lockset 3
        assert hb.failures == 0

    def test_failed_result_counts_failure_only(self):
        hb = CampaignHeartbeat(total=4, interval=0.0)
        hb.task_done(FakeResult(ok=False))
        assert (hb.completed, hb.events, hb.failures) == (1, 0, 1)

    def test_pool_update_reflected_in_record(self):
        hb = CampaignHeartbeat(total=4, interval=0.0)
        hb.pool_update(PoolStatus(
            dispatched=2, completed=1, total=4, worker_crashes=1,
            task_retries=2,
            workers=(WorkerStatus(0, True, 3, 0.25),
                     WorkerStatus(1, False))))
        record = hb.records[-1]
        assert record["worker_crashes"] == 1
        assert record["task_retries"] == 2
        assert record["workers"] == [
            {"id": 0, "alive": True, "task": 3, "busy_s": 0.25},
            {"id": 1, "alive": False, "task": None, "busy_s": 0.0}]


class TestEmission:
    def test_interval_rate_limits(self):
        hb = CampaignHeartbeat(total=10, interval=3600.0)
        first = hb.beat()
        assert first is not None  # nothing emitted yet: always beats
        for _ in range(5):
            assert hb.beat() is None
        assert hb.beat(force=True) is not None
        assert len(hb.records) == 2

    def test_jsonl_stream_and_final_record(self, tmp_path):
        path = tmp_path / "heartbeat.jsonl"
        hb = CampaignHeartbeat(total=2, path=str(path), interval=0.0)
        hb.task_done(FakeResult())
        hb.task_done(FakeResult())
        final = hb.finish()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert [r["completed"] for r in lines] == [1, 2, 2]
        assert lines[-1]["final"] is True
        assert lines[-1] == final
        assert "elapsed" in final
        # the final record reports the cumulative rate
        assert final["events_per_sec"] > 0

    def test_summary_is_last_record(self):
        hb = CampaignHeartbeat(total=1, interval=0.0)
        assert hb.summary() is None
        hb.task_done(FakeResult())
        final = hb.finish()
        assert hb.summary() == final

    def test_stream_appends_across_instances(self, tmp_path):
        path = tmp_path / "heartbeat.jsonl"
        for _ in range(2):
            hb = CampaignHeartbeat(total=1, path=str(path), interval=0.0)
            hb.task_done(FakeResult())
            hb.finish()
        lines = path.read_text().splitlines()
        assert len(lines) == 4  # two beats per campaign, appended


class TestRendering:
    def test_non_tty_renders_one_line_per_beat(self):
        stream = io.StringIO()  # not a tty
        hb = CampaignHeartbeat(total=2, interval=0.0, render=True,
                               stream=stream)
        hb.task_done(FakeResult(svd=4))
        hb.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[heartbeat] 1/2 tasks")
        assert "4 violations" in lines[0]
        assert "1 worker(s) alive" not in lines[0]  # no pool feed yet


class TestPoolMonitorFeed:
    def test_serial_pool_reports_before_and_after_each_task(self):
        seen = []
        parallel_map(doubler, [1, 2], workers=1, monitor=seen.append)
        assert all(isinstance(s, PoolStatus) for s in seen)
        assert len(seen) == 4  # pre + post per task
        assert seen[0].workers[0].task_index == 0
        assert seen[1].workers[0].task_index is None
        assert seen[-1].completed == 2

    def test_parallel_pool_emits_final_counts(self):
        seen = []
        outcomes = parallel_map(doubler, [1, 2, 3], workers=2,
                                monitor=seen.append)
        assert [o for o in outcomes] == [("ok", 2), ("ok", 4), ("ok", 6)]
        assert seen[-1].completed == 3
        assert seen[-1].total == 3
        assert seen[-1].worker_crashes == 0
        assert all(len(s.workers) >= 1 for s in seen[1:])

    def test_heartbeat_consumes_pool_feed_end_to_end(self):
        hb = CampaignHeartbeat(total=3, interval=0.0)
        parallel_map(doubler, [1, 2, 3], workers=2,
                     monitor=hb.pool_update)
        final = hb.finish()
        assert final["workers"]  # liveness made it into the record
