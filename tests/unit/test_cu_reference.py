"""Reference CU partition tests (Definitions 1-3, paper §3.2)."""

import pytest

from repro.machine.events import EV_LOAD, EV_STORE
from repro.pdg import build_dpdg, reference_cu_partition
from repro.pdg.dpdg import TRUE_SHARED
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


def partition_for(source, threads, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    pdg = build_dpdg(trace)
    parts = {tid: reference_cu_partition(pdg, tid)
             for tid in range(len(threads))}
    return trace, pdg, parts


class TestPartitionBasics:
    def test_is_a_partition(self):
        _t, pdg, parts = partition_for(
            COUNTER_RACE, [("worker", (10,)), ("worker", (10,))])
        for tid, part in parts.items():
            vertices = pdg.thread_vertices(tid)
            covered = sorted(s for members in part.members.values()
                             for s in members)
            assert covered == vertices
            for seq in vertices:
                assert part.cu_of[seq] in part.members
                assert seq in part.members[part.cu_of[seq]]

    def test_members_sorted(self):
        _t, _pdg, parts = partition_for(
            COUNTER_RACE, [("worker", (5,)), ("worker", (5,))])
        for part in parts.values():
            for members in part.members.values():
                assert members == sorted(members)

    def test_single_thread_no_shared_is_one_component_per_chain(self):
        src = "thread t() { int a = 1; int b = a + 1; int c = b + 1; }"
        _t, pdg, parts = partition_for(src, [("t", ())])
        part = parts[0]
        # the a->b->c chain must share one CU
        sizes = sorted(len(m) for m in part.members.values())
        assert sizes[-1] >= 6  # loads+stores+ALUs of the chain


class TestRegionHypothesisRuleOne:
    """No CU may contain a shared (write -> read) dependence."""

    def _assert_no_internal_shared_arcs(self, pdg, parts):
        for tid, part in parts.items():
            for arc in pdg.thread_arcs(tid):
                if arc.kind == TRUE_SHARED:
                    assert part.cu_of[arc.src] != part.cu_of[arc.dst], \
                        f"shared arc {arc} inside one CU"

    def test_counter_race(self):
        _t, pdg, parts = partition_for(
            COUNTER_RACE, [("worker", (10,)), ("worker", (10,))])
        self._assert_no_internal_shared_arcs(pdg, parts)

    def test_counter_locked(self):
        _t, pdg, parts = partition_for(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        self._assert_no_internal_shared_arcs(pdg, parts)

    def test_producer_consumer(self):
        src = ("shared int flag; shared int data;"
               "thread p() { data = 42; flag = 1; }"
               "thread c() { while (flag == 0) { } int v = data;"
               " output(v); }")
        _t, pdg, parts = partition_for(src, [("p", ()), ("c", ())],
                                       switch_prob=0.8)
        self._assert_no_internal_shared_arcs(pdg, parts)


class TestCutSemantics:
    def test_rmw_iterations_in_separate_cus(self):
        """Each read-modify-write of the shared counter must start a new
        CU (the previous iteration's write is read back)."""
        _t, pdg, parts = partition_for(
            COUNTER_RACE, [("worker", (8,)), ("worker", (8,))])
        trace = pdg.trace
        counter_addr = trace.program.address_of("counter")
        for tid, part in parts.items():
            loads = [e for e in trace.thread_trace(tid)
                     if e.kind == EV_LOAD and e.addr == counter_addr]
            cu_ids = [part.cu_of[e.seq] for e in loads]
            # consecutive counter loads must be in distinct CUs
            assert len(set(cu_ids)) == len(cu_ids)

    def test_cut_keeps_read_with_its_consumers(self):
        """The load that triggers the cut belongs to the *new* CU along
        with the store it feeds."""
        _t, pdg, parts = partition_for(
            COUNTER_RACE, [("worker", (6,)), ("worker", (6,))])
        trace = pdg.trace
        counter_addr = trace.program.address_of("counter")
        part = parts[0]
        events = [e for e in trace.thread_trace(0)
                  if e.addr == counter_addr and e.kind in (EV_LOAD, EV_STORE)]
        # pair up load/store per iteration: same CU
        for load, store in zip(events[::2], events[1::2]):
            assert load.kind == EV_LOAD and store.kind == EV_STORE
            assert part.cu_of[load.seq] == part.cu_of[store.seq]

    def test_private_chain_untouched_by_other_threads_cuts(self):
        """A thread-private dependence chain stays one CU even while other
        threads race on shared data."""
        src = ("shared int x;"
               "thread racer(int n) { int i = 0; while (i < n) {"
               " x = x + 1; i = i + 1; } }"
               "thread solo() { int a = 1; int b = a + 1; int c = b + a; }")
        _t, pdg, parts = partition_for(
            src, [("racer", (10,)), ("racer", (10,)), ("solo", ())])
        solo = parts[2]
        sizes = sorted((len(m) for m in solo.members.values()), reverse=True)
        assert sizes[0] >= 8


class TestReadSetComputation:
    def test_input_blocks_exclude_self_written(self):
        src = ("shared int x; shared int y = 3;"
               "thread t() { x = y; int z = x; output(z); }"
               "thread o() { int w = x; }")
        _t, pdg, parts = partition_for(src, [("t", ()), ("o", ())])
        trace = pdg.trace
        x_addr = trace.program.address_of("x")
        y_addr = trace.program.address_of("y")
        part = parts[0]
        # find the CU containing the store to x
        store = next(e for e in trace.thread_trace(0)
                     if e.kind == EV_STORE and e.addr == x_addr)
        cu_id = part.cu_of[store.seq]
        reads = part.read_set(cu_id, pdg.events)
        assert y_addr in reads
        assert x_addr not in reads  # x was written before being read
        writes = part.write_set(cu_id, pdg.events)
        assert x_addr in writes
