"""White-box tests of the online detector's internal machinery."""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler, SerialScheduler
from tests.conftest import run_with_svd


def run_serial_with_svd(source, threads):
    program = compile_source(source)
    svd = OnlineSVD(program)
    machine = Machine(program, threads, scheduler=SerialScheduler(),
                      observers=[svd])
    machine.run()
    return machine, svd


class TestControlStack:
    def test_stack_empty_after_structured_code(self):
        src = ("shared int x = 1; shared int y;"
               "thread t() { if (x) { y = 1; } else { y = 2; }"
               " if (y) { if (x) { y = 3; } } }")
        _m, svd = run_serial_with_svd(src, [("t", ())])
        for detector in svd.threads.values():
            assert detector.ctrl_stack == []

    def test_loop_branches_never_pushed(self):
        src = ("shared int x;"
               "thread t() { int i = 0; while (i < 50) {"
               " x = x + 1; i = i + 1; } }")
        program = compile_source(src)
        svd = OnlineSVD(program)
        # per-event delivery, or the peak probe below is vacuous
        machine = Machine(program, [("t", ())], scheduler=SerialScheduler(),
                          batch_events=False)
        machine.add_observer(svd)
        # track peak control-stack depth during the run
        peak = 0
        while machine.step():
            for detector in svd.threads.values():
                peak = max(peak, len(detector.ctrl_stack))
        assert peak == 0  # loop-type control flow is not inferred

    def test_nested_ifs_push_and_pop(self):
        src = ("shared int x = 1; shared int y = 1; shared int z;"
               "thread t() { if (x) { if (y) { z = 1; } } }")
        program = compile_source(src)
        svd = OnlineSVD(program)
        # this test polls detector state after every single step, so
        # batched (deferred) event delivery must stay off
        machine = Machine(program, [("t", ())], scheduler=SerialScheduler(),
                          batch_events=False)
        machine.add_observer(svd)
        peak = 0
        while machine.step():
            for detector in svd.threads.values():
                peak = max(peak, len(detector.ctrl_stack))
        assert peak == 2  # both if-entries were live at once
        assert all(not d.ctrl_stack for d in svd.threads.values())


class TestRegisterPropagation:
    def test_load_sets_singleton_cuset(self):
        src = "shared int x = 1; thread t() { int y = x; output(y); }"
        program = compile_source(src)
        svd = OnlineSVD(program)
        machine = Machine(program, [("t", ())], scheduler=SerialScheduler())
        machine.add_observer(svd)
        machine.run()
        # at thread end registers were cleared
        assert all(not d.regs for d in svd.threads.values())

    def test_alu_unions_cusets(self):
        """Two independent shared reads feed one ALU: the consuming
        store's check covers both CUs (detected via merge count)."""
        src = ("shared int a = 1; shared int b = 2; shared int r;"
               "thread t() { r = a + b; }"
               "thread other() { int x = a; int y = b; output(x + y); }")
        _m, svd = run_serial_with_svd(src, [("t", ()), ("other", ())])
        # storing r merged the CUs of the two loads
        assert svd.cus_merged >= 1


class TestDirectory:
    def test_interest_follows_tracked_blocks(self):
        src = ("shared int x;"
               "thread t(int n) { int i = 0; while (i < n) {"
               " x = x + 1; i = i + 1; } }")
        program = compile_source(src)
        svd = OnlineSVD(program)
        # per-step polling of the directory needs per-event delivery
        machine = Machine(program, [("t", (5,)), ("t", (5,))],
                          scheduler=RandomScheduler(seed=1, switch_prob=0.5),
                          observers=[svd], batch_events=False)
        # mid-run, some thread must register interest in x's block
        saw_interest = False
        x_addr = program.address_of("x")
        while machine.step():
            if svd.trackers.get(x_addr):
                saw_interest = True
        assert saw_interest
        assert not svd.trackers  # all interest dropped at the end

    def test_remote_messages_counted_only_for_trackers(self):
        # two threads on disjoint data: no remote messages at all
        src = ("shared int a; shared int b;"
               "thread ta() { a = 1; a = a + 1; }"
               "thread tb() { b = 1; b = b + 1; }")
        program = compile_source(src)
        svd = OnlineSVD(program)
        machine = Machine(program, [("ta", ()), ("tb", ())],
                          scheduler=RandomScheduler(seed=1, switch_prob=0.9),
                          observers=[svd])
        machine.run()
        assert svd.remote_messages == 0


class TestCommunicationLog:
    def test_triple_requires_prior_local_write(self):
        """A read of a remotely-written variable with no preceding local
        write is ordinary communication, not an overwrite -- no triple."""
        src = ("shared int flag;"
               "thread w() { flag = 1; }"
               "thread r() { int v = flag; output(v); }")
        program = compile_source(src)
        svd = OnlineSVD(program)
        machine = Machine(program, [("w", ()), ("r", ())],
                          scheduler=SerialScheduler(), observers=[svd])
        machine.run()
        assert len(svd.log.entries) == 0

    def test_triple_on_overwritten_local_communication(self):
        """w writes, r overwrites remotely, w reads back: that is the
        (s, rw, lw) pattern."""
        src = ("shared int v;"
               "thread w() { v = 1; int back = v; output(back); }"
               "thread r() { v = 2; }")
        program = compile_source(src)
        # quantum=1 interleaves exactly: w stores, r overwrites, w reads
        from repro.machine import RoundRobinScheduler
        svd = OnlineSVD(program)
        machine = Machine(program, [("w", ()), ("r", ())],
                          scheduler=RoundRobinScheduler(quantum=1),
                          observers=[svd])
        machine.run()
        matching = [e for e in svd.log.entries
                    if program.name_of_address(e.address) == "v"]
        assert matching
        entry = matching[0]
        assert entry.remote_tid != entry.tid
        assert entry.local_seq < entry.remote_seq < entry.reader_seq
