"""Worker-death forensics: a worker that dies outright must surface its
exit code and captured stderr in the task's error outcome, bump the
``pool.worker_crash`` counter, and never take the run down with it."""

import os

import repro.obs as obs
from repro.harness.pool import parallel_map

CRASH_MARKER = "pool-crash-last-words"


def crashing_task(payload):
    """Pool task that writes last words to fd 2 and dies without
    returning (``os._exit`` skips exception handling entirely, like a
    segfault; fd-level write because that is what the pool captures --
    and what an aborting C runtime would do)."""
    if payload == "crash":
        os.write(2, (CRASH_MARKER + "\n").encode())
        os._exit(3)
    return payload * 2


class TestWorkerCrashCapture:
    def test_crash_becomes_error_with_stderr_tail(self):
        outcomes = parallel_map(crashing_task,
                                ["a", "crash", "b"], workers=2)
        by_status = {}
        for status, value in outcomes:
            by_status.setdefault(status, []).append(value)
        assert sorted(by_status["ok"]) == ["aa", "bb"]
        [message] = by_status["error"]
        assert "worker process died" in message
        assert "exitcode 3" in message
        assert CRASH_MARKER in message

    def test_crash_counter_recorded(self):
        with obs.session(tracing=False) as handle:
            parallel_map(crashing_task, ["crash", "a"], workers=2)
        counters = handle.registry.snapshot()["counters"]
        assert counters["pool.worker_crash"] >= 1
        assert counters["pool.tasks.error"] == 1
        assert counters["pool.tasks.ok"] == 1

    def test_stderr_scratch_files_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile
        monkeypatch.setattr(tempfile, "tempdir", None)  # re-read TMPDIR
        parallel_map(crashing_task, ["a", "crash"], workers=2)
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.startswith("repro-pool-stderr-")]
        assert leftovers == []

    def test_inline_mode_unaffected(self):
        outcomes = parallel_map(crashing_task, ["a", "b"], workers=1)
        assert [status for status, _ in outcomes] == ["ok", "ok"]
