"""The shard planner: spec serialization, plan artefacts, heartbeat
merging, and the partial-merge (missing shard) path.  End-to-end
sharded/unsharded byte-identity lives in
``tests/property/test_shard_merge_identity.py``.
"""

import json
import os

import pytest

from repro.harness.campaign import (CampaignSpec, ConfigSpec,
                                    WorkloadSpec, run_campaign)
from repro.harness.journal import spec_fingerprint
from repro.harness.shard import (ShardError, load_plan, load_shard,
                                 merge_heartbeats, merge_shards,
                                 plan_shards, shard_dir_name,
                                 spec_from_json, spec_to_json)
from repro.obs.rss import peak_rss_bytes


def small_spec(**kwargs):
    kwargs.setdefault("obs", False)
    return CampaignSpec(
        workloads=[WorkloadSpec(name="stringbuffer"),
                   WorkloadSpec(name="queue-region")],
        configs=[ConfigSpec(max_steps=30_000)], seeds=3, **kwargs)


class TestSpecSerialization:
    def test_round_trips_exactly(self):
        spec = CampaignSpec(
            workloads=[WorkloadSpec(name="apache", factory=None,
                                    kwargs={"writers": 2})],
            configs=[ConfigSpec(name="tuned", svd={"window": 9},
                                switch_prob=0.7, max_steps=500,
                                run_frd=False, detectors=("svd", "frd"),
                                consistency="tso", model_seed=3)],
            seeds=5, master_seed=42, task_timeout=9.0, obs=False,
            task_retries=2, retry_backoff=0.5)
        loaded = spec_from_json(json.loads(
            json.dumps(spec_to_json(spec))))
        assert loaded == spec
        assert spec_fingerprint(loaded) == spec_fingerprint(spec)


class TestPlanArtefacts:
    def test_plan_writes_manifest_and_shard_specs(self, tmp_path):
        out = str(tmp_path / "plan")
        plan = plan_shards(small_spec(), 3, out)
        assert plan.total_tasks == 6
        loaded = load_plan(out)
        assert loaded.count == 3
        assert loaded.fingerprint == plan.fingerprint
        assert loaded.spec == small_spec()
        # each shard carries the full spec plus its round-robin slice
        for index in range(3):
            spec, (k, n) = load_shard(
                os.path.join(out, shard_dir_name(index)))
            assert (k, n) == (index, 3)
            assert spec == small_spec()

    def test_empty_shards_are_planned(self, tmp_path):
        plan = plan_shards(small_spec(), 7, str(tmp_path / "plan"))
        counts = [json.load(open(os.path.join(d, "spec.json")))["tasks"]
                  for d in plan.shard_dirs()]
        assert sum(counts) == 6
        assert counts.count(0) == 1  # 6 tasks over 7 shards

    def test_bad_count_rejected(self, tmp_path):
        with pytest.raises(ShardError, match="must be >= 1"):
            plan_shards(small_spec(), 0, str(tmp_path / "plan"))

    def test_existing_plan_rejected(self, tmp_path):
        out = str(tmp_path / "plan")
        plan_shards(small_spec(), 2, out)
        with pytest.raises(ShardError, match="already exists"):
            plan_shards(small_spec(), 2, out)

    def test_tampered_manifest_rejected(self, tmp_path):
        out = str(tmp_path / "plan")
        plan_shards(small_spec(), 2, out)
        manifest = os.path.join(out, "manifest.json")
        doc = json.load(open(manifest))
        doc["spec"]["seeds"] = 99  # no longer matches the fingerprint
        with open(manifest, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ShardError, match="does not match"):
            load_plan(out)

    def test_missing_plan_rejected(self, tmp_path):
        with pytest.raises(ShardError, match="cannot read"):
            load_plan(str(tmp_path / "nope"))


class TestMergeShards:
    def _run_shard(self, plan_dir, index, count):
        shard_dir = os.path.join(plan_dir, shard_dir_name(index))
        spec, (k, n) = load_shard(shard_dir)
        assert (k, n) == (index, count)
        run_campaign(spec, journal_dir=shard_dir, keep_results=False,
                     shard=(k, n))

    def test_partial_merge_reports_missing_tasks(self, tmp_path):
        out = str(tmp_path / "plan")
        plan_shards(small_spec(), 3, out)
        self._run_shard(out, 0, 3)
        self._run_shard(out, 2, 3)  # shard 1 never ran
        merge = merge_shards(out)
        assert merge.shards == [0, 2]
        assert merge.missing == 2  # shard 1's round-robin slice
        assert all(i % 3 == 1 for i in merge.missing_sample)
        assert merge.report.interrupted
        # what did run is aggregated normally
        assert merge.report.aggregate.completed == 4

    def test_complete_merge(self, tmp_path):
        out = str(tmp_path / "plan")
        plan_shards(small_spec(), 3, out)
        for index in range(3):
            self._run_shard(out, index, 3)
        merge = merge_shards(out)
        assert merge.missing == 0
        assert not merge.report.interrupted
        assert merge.report.aggregate.completed == 6
        assert merge.report.aggregate.failed_count == 0


class TestMergeHeartbeats:
    def test_counts_sum_clocks_max(self):
        merged = merge_heartbeats([
            {"completed": 2, "total": 3, "events": 100, "violations": 1,
             "failures": 0, "worker_crashes": 0, "task_retries": 1,
             "elapsed": 2.0, "rss_peak_bytes": 500, "final": True},
            {"completed": 3, "total": 3, "events": 200, "violations": 0,
             "failures": 1, "worker_crashes": 2, "task_retries": 0,
             "elapsed": 4.0, "rss_peak_bytes": 900, "final": True,
             "interrupted": True},
        ])
        assert merged["completed"] == 5
        assert merged["events"] == 300
        assert merged["violations"] == 1
        assert merged["failures"] == 1
        assert merged["worker_crashes"] == 2
        assert merged["task_retries"] == 1
        # the shards ran concurrently: wall clock is the slowest shard,
        # peak RSS the largest coordinator
        assert merged["elapsed"] == 4.0
        assert merged["rss_peak_bytes"] == 900
        assert merged["events_per_sec"] == 75.0
        assert merged["interrupted"] and merged["merged"]
        assert merged["shards"] == 2

    def test_empty_is_none(self):
        assert merge_heartbeats([]) is None


class TestPeakRss:
    def test_positive_and_tracks_growth(self):
        first = peak_rss_bytes()
        assert first > 1024 * 1024  # a python process is at least a MB
        ballast = bytearray(32 * 1024 * 1024)
        grown = peak_rss_bytes()
        assert grown >= first + 24 * 1024 * 1024
        del ballast
        # a high-water mark does not come back down (modulo the
        # kernel's deferred per-thread RSS accounting, which can lag a
        # few hundred KB either way)
        assert peak_rss_bytes() >= grown - 2 * 1024 * 1024
