"""Harness (runner, tables, overhead, length sweep) tests."""

import pytest

from repro.harness import (
    characterize, length_sweep, measure_overhead, render_table,
    run_workload, table2_rows,
)
from repro.harness.table2 import aggregate_row, render_table2
from repro.workloads import apache_log, mysql_tablelock, pgsql_oltp


class TestRunner:
    def test_run_result_fields(self):
        result = run_workload(apache_log(writers=2, requests=6), seed=1)
        assert result.workload == "apache"
        assert result.instructions > 0
        assert result.svd.detector == "svd"
        assert result.frd is not None
        assert result.cus_created > 0

    def test_frd_can_be_skipped(self):
        result = run_workload(apache_log(writers=2, requests=6), seed=1,
                              run_frd=False)
        assert result.frd is None
        assert result.frd_report is None

    def test_apparent_fn_requires_manifestation(self):
        # a clean run of a buggy workload cannot be an apparent FN
        result = run_workload(apache_log(writers=2, requests=6), seed=1)
        if not result.outcome.manifested:
            assert not result.apparent_false_negative

    def test_bug_locs_attached(self):
        workload = apache_log(writers=2, requests=6)
        result = run_workload(workload, seed=1)
        assert result.bug_locs == workload.bug_locs()


class TestAggregation:
    def test_aggregate_sums_instructions(self):
        workload = mysql_tablelock(ops=10)
        runs = [run_workload(workload, seed=s) for s in range(2)]
        row = aggregate_row("MySQL", False, runs)
        assert row.instructions == sum(r.instructions for r in runs)
        assert row.segments == 2
        assert row.apparent_fn_text == "N/A"

    def test_static_fps_are_unioned_not_summed(self):
        workload = mysql_tablelock(ops=10)
        runs = [run_workload(workload, seed=s) for s in range(3)]
        row = aggregate_row("MySQL", False, runs)
        per_run_max = max(len(r.frd.static_fp_locs) for r in runs)
        assert row.frd_static_fp >= per_run_max
        assert row.frd_static_fp <= sum(len(r.frd.static_fp_locs)
                                        for r in runs)

    def test_render_table2_smoke(self):
        workload = mysql_tablelock(ops=10)
        runs = [run_workload(workload, seed=0)]
        row = aggregate_row("PgSQL", False, runs)
        text = render_table2([row])
        assert "PgSQL" in text
        assert "staticFP" in text


class TestCharacterize:
    def test_buggy_run_labelled(self):
        row = characterize(apache_log(writers=2, requests=10), seed=3)
        assert row.threads == 2
        assert "manifest" in row.erroneous_execution or \
            "bug present" in row.erroneous_execution

    def test_clean_run_labelled(self):
        row = characterize(mysql_tablelock(ops=10))
        assert "no known errors" in row.erroneous_execution


class TestOverheadAndSweep:
    def test_overhead_measures_slowdown(self):
        result = measure_overhead(mysql_tablelock(ops=15), repeats=1)
        assert result.slowdown > 1.0
        assert result.instructions > 0
        assert result.peak_detector_state > 0

    def test_length_sweep_monotone_instructions(self):
        points = length_sweep(lambda ops: mysql_tablelock(ops=ops),
                              [5, 10, 20])
        insts = [p.instructions for p in points]
        assert insts == sorted(insts)
        assert points[-1].frd_dynamic_fp >= points[0].frd_dynamic_fp


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["A", "B"], [(1, 2.5), ("xy", 0.0001)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "B" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = render_table(["v"], [(1234.5,), (0.000123,), (0.0,)])
        assert "1234" in text or "1235" in text
        assert "0.00012" in text
