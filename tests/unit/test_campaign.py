"""Campaign engine tests: deterministic seed derivation, serial/parallel
result equality, and worker-crash isolation."""

import time

import pytest

from repro.harness.campaign import (CampaignSpec, ConfigSpec, WorkloadSpec,
                                    derive_seed, execute_task, run_campaign)

FAST = ConfigSpec(max_steps=30_000)


def failing_workload():
    """Injected broken factory: raises before a machine ever runs."""
    raise RuntimeError("injected workload failure")


def hanging_workload():
    """Injected hang: sleeps far past any per-task timeout."""
    time.sleep(600)


def small_spec(seeds=3, **kwargs):
    return CampaignSpec(
        workloads=[WorkloadSpec(name="stringbuffer"),
                   WorkloadSpec(name="queue-region")],
        configs=[FAST], seeds=seeds, **kwargs)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(0, "apache", "default", 3) == \
            derive_seed(0, "apache", "default", 3)

    def test_coordinates_matter(self):
        base = derive_seed(0, "apache", "default", 0)
        assert derive_seed(1, "apache", "default", 0) != base
        assert derive_seed(0, "mysql", "default", 0) != base
        assert derive_seed(0, "apache", "block4", 0) != base
        assert derive_seed(0, "apache", "default", 1) != base

    def test_stable_across_releases(self):
        """Pinned values: changing the derivation silently re-randomises
        every recorded campaign, so it must be an explicit decision."""
        assert derive_seed(0, "apache", "default", 0) == 1760085674
        assert derive_seed(7, "pgsql", "block4", 3) == 1977583274

    def test_task_expansion_is_deterministic(self):
        tasks_a = small_spec().tasks()
        tasks_b = small_spec().tasks()
        assert [(t.index, t.workload.name, t.seed_index, t.seed)
                for t in tasks_a] == \
            [(t.index, t.workload.name, t.seed_index, t.seed)
             for t in tasks_b]


class TestSerialCampaign:
    def test_runs_and_aggregates(self):
        report = run_campaign(small_spec(), workers=1)
        assert len(report.results) == 6
        assert all(r.ok for r in report.results)
        rows = report.table2_rows()
        assert {row.program for row in rows} == \
            {"stringbuffer", "queue-region"}
        assert all(row.segments == 3 for row in rows)

    def test_identical_across_repeats(self):
        first = run_campaign(small_spec(), workers=1)
        second = run_campaign(small_spec(), workers=1)
        assert first.render_metrics() == second.render_metrics()

    def test_streaming_callback_sees_every_result(self):
        seen = []
        run_campaign(small_spec(seeds=2), workers=1,
                     on_result=lambda r: seen.append(r.index))
        assert sorted(seen) == list(range(4))


class TestParallelCampaign:
    def test_matches_serial_byte_for_byte(self):
        serial = run_campaign(small_spec(), workers=1)
        parallel = run_campaign(small_spec(), workers=2)
        assert parallel.render_metrics() == serial.render_metrics()
        assert parallel.render_table2() == serial.render_table2()

    def test_per_run_results_match_serial(self):
        serial = run_campaign(small_spec(seeds=2), workers=1)
        parallel = run_campaign(small_spec(seeds=2), workers=3)
        for a, b in zip(serial.results, parallel.results):
            assert (a.index, a.workload, a.seed, a.status,
                    a.instructions, a.svd.dynamic_total) == \
                (b.index, b.workload, b.seed, b.status,
                 b.instructions, b.svd.dynamic_total)


class TestCrashIsolation:
    def spec_with_failure(self):
        return CampaignSpec(
            workloads=[
                WorkloadSpec(name="stringbuffer"),
                WorkloadSpec(
                    name="broken",
                    factory="tests.unit.test_campaign:failing_workload"),
            ],
            configs=[FAST], seeds=2)

    def test_serial_failure_is_one_error_result(self):
        report = run_campaign(self.spec_with_failure(), workers=1)
        errors = [r for r in report.results if not r.ok]
        assert len(errors) == 2  # one per seed of the broken workload
        assert all(r.workload == "broken" for r in errors)
        assert all("injected workload failure" in r.error for r in errors)
        # the healthy workload still completed every seed
        ok = [r for r in report.results if r.workload == "stringbuffer"]
        assert len(ok) == 2 and all(r.ok for r in ok)

    def test_parallel_failure_does_not_kill_campaign(self):
        report = run_campaign(self.spec_with_failure(), workers=2)
        assert len(report.results) == 4
        errors = [r for r in report.results if not r.ok]
        assert [r.workload for r in errors] == ["broken", "broken"]

    def test_hung_worker_is_timed_out_and_isolated(self):
        spec = CampaignSpec(
            workloads=[
                WorkloadSpec(name="stringbuffer"),
                WorkloadSpec(
                    name="hang",
                    factory="tests.unit.test_campaign:hanging_workload"),
            ],
            configs=[FAST], seeds=1, task_timeout=1.5)
        report = run_campaign(spec, workers=2)
        assert len(report.results) == 2
        hung = [r for r in report.results if r.workload == "hang"]
        assert len(hung) == 1 and hung[0].status == "timeout"
        healthy = [r for r in report.results
                   if r.workload == "stringbuffer"]
        assert len(healthy) == 1 and healthy[0].ok

    def test_execute_task_never_raises(self):
        spec = self.spec_with_failure()
        for task in spec.tasks():
            result = execute_task(task)
            assert result.status != ""  # always a result, never a raise


class TestCampaignObs:
    def test_tasks_carry_obs_flag(self):
        assert all(not t.obs for t in small_spec().tasks())
        assert all(t.obs for t in small_spec(obs=True).tasks())

    def test_serial_collects_snapshots(self):
        report = run_campaign(small_spec(seeds=2, obs=True), workers=1)
        assert all(r.obs is not None for r in report.results)
        merged = report.merged_obs()
        assert merged["counters"]["runner.runs"] == 4

    def test_obs_json_byte_identical_across_worker_counts(self):
        serial = run_campaign(small_spec(obs=True), workers=1)
        parallel = run_campaign(small_spec(obs=True), workers=2)
        assert serial.obs_json() is not None
        assert serial.obs_json() == parallel.obs_json()

    def test_no_obs_means_no_snapshots(self):
        report = run_campaign(small_spec(seeds=1), workers=1)
        assert all(r.obs is None for r in report.results)
        assert report.merged_obs() is None
        assert report.obs_json() is None

    def test_worker_scope_does_not_leak_into_parent(self):
        import repro.obs as obs
        run_campaign(small_spec(seeds=1, obs=True), workers=1)
        assert not obs.metrics_enabled()


class TestBudget:
    def test_budget_skips_rather_than_hangs(self):
        spec = small_spec(seeds=40)
        report = run_campaign(spec, workers=1, budget=0.0)
        skipped = [r for r in report.results if r.status == "skipped"]
        assert len(report.results) == 80
        assert len(skipped) >= 78  # the first task may sneak in
