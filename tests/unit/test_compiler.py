"""Compiler (semantic analysis + codegen) unit tests."""

import pytest

from repro.isa.instructions import (
    Acquire, Alu, Assert, Branch, Halt, Imm, Jump, Load, Output, Reg,
    Release, Store,
)
from repro.lang import compile_source
from repro.lang.errors import SemanticError
from tests.conftest import run_program


def compile_thread(body, decls=""):
    return compile_source(f"{decls}\nthread t() {{ {body} }}")


class TestLayout:
    def test_shared_scalar_gets_address(self):
        prog = compile_source("shared int x; thread t() { x = 1; }")
        assert prog.globals_layout["x"] == (0, 1)

    def test_sequential_layout(self):
        prog = compile_source(
            "shared int x; shared int a[4]; shared int y; thread t() { }")
        assert prog.globals_layout["x"] == (0, 1)
        assert prog.globals_layout["a"] == (1, 4)
        assert prog.globals_layout["y"] == (5, 1)

    def test_locks_after_globals(self):
        prog = compile_source("shared int x; lock m; thread t() { }")
        assert 1 in prog.lock_names
        assert prog.lock_names[1] == "m"
        assert prog.shared_words == 2

    def test_scalar_init_value(self):
        prog = compile_source("shared int x = 9; thread t() { }")
        assert prog.init_values[0] == 9

    def test_array_init_list(self):
        prog = compile_source("shared int a[3] = {4, 5, 6}; thread t() { }")
        assert [prog.init_values[i] for i in range(3)] == [4, 5, 6]

    def test_array_broadcast_init(self):
        prog = compile_source("shared int a[3] = 7; thread t() { }")
        assert [prog.init_values[i] for i in range(3)] == [7, 7, 7]

    def test_too_many_initialisers_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("shared int a[2] = {1,2,3}; thread t() { }")

    def test_thread_frame_includes_params_and_locals(self):
        prog = compile_source(
            "local int g; thread t(int p) { int x = p; x = x + g; }")
        spec = prog.threads["t"]
        assert spec.frame_words >= 3  # p, g, x

    def test_reg_count_recorded(self):
        prog = compile_source("shared int x; thread t() { x = x + 1; }")
        assert prog.threads["t"].reg_count > 1


class TestSemanticErrors:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_thread("x = 1;")

    def test_redeclared_global(self):
        with pytest.raises(SemanticError):
            compile_source("shared int x; shared int x; thread t() { }")

    def test_redeclared_local(self):
        with pytest.raises(SemanticError):
            compile_thread("int x = 0; int x = 1;")

    def test_shadowing_in_inner_scope_allowed(self):
        compile_thread("int x = 0; if (x) { int x = 1; x = 2; }")

    def test_undeclared_lock(self):
        with pytest.raises(SemanticError):
            compile_thread("acquire(m);")

    def test_lock_used_as_variable(self):
        with pytest.raises(SemanticError):
            compile_source("lock m; thread t() { m = 1; }")

    def test_scalar_indexed_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("shared int x; thread t() { x[0] = 1; }")

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("shared int a[4]; thread t() { a = 1; }")

    def test_memcpy_on_scalar_rejected(self):
        with pytest.raises(SemanticError):
            compile_source(
                "shared int a[4]; shared int x;"
                "thread t() { memcpy(a, 0, x, 0, 1); }")

    def test_duplicate_thread_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("thread t() { } thread t() { }")

    def test_no_threads_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("shared int x;")

    def test_local_global_with_initialiser_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("local int g = 5; thread t() { }")


class TestCodegenExecution:
    """End-to-end: compiled programs compute the right values."""

    def run_single(self, source, threads=None, **kwargs):
        machine, _ = run_program(source, threads or [("t", ())], **kwargs)
        return machine

    def test_arithmetic(self):
        m = self.run_single(
            "shared int r; thread t() { r = 2 + 3 * 4 - 6 / 2; }")
        assert m.read_global("r") == 11

    def test_modulo_and_compare(self):
        m = self.run_single(
            "shared int r; shared int s;"
            "thread t() { r = 17 % 5; s = (3 < 4) + (4 <= 4) + (5 > 9); }")
        assert m.read_global("r") == 2
        assert m.read_global("s") == 2

    def test_logical_ops(self):
        m = self.run_single(
            "shared int r; thread t() { r = (1 && 0) + (1 || 0) * 10; }")
        assert m.read_global("r") == 10

    def test_unary(self):
        m = self.run_single(
            "shared int r; shared int s;"
            "thread t() { r = -5 + 6; s = !0 + !7; }")
        assert m.read_global("r") == 1
        assert m.read_global("s") == 1

    def test_if_taken_and_not_taken(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " if (1) { r = r + 10; } if (0) { r = r + 100; } }")
        assert m.read_global("r") == 10

    def test_if_else(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " if (0) { r = 1; } else { r = 2; } }")
        assert m.read_global("r") == 2

    def test_while_loop(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " int i = 0; while (i < 5) { r = r + i; i = i + 1; } }")
        assert m.read_global("r") == 10

    def test_for_loop(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " for (int i = 0; i < 4; i = i + 1) { r = r + 2; } }")
        assert m.read_global("r") == 8

    def test_nested_loops(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " for (int i = 0; i < 3; i = i + 1) {"
            "   for (int j = 0; j < 3; j = j + 1) { r = r + 1; } } }")
        assert m.read_global("r") == 9

    def test_array_read_write(self):
        m = self.run_single(
            "shared int a[4]; shared int r; thread t() {"
            " a[0] = 5; a[3] = 7; r = a[0] + a[3]; }")
        assert m.read_global("r") == 12

    def test_array_dynamic_index(self):
        m = self.run_single(
            "shared int a[8]; shared int r; thread t() {"
            " for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }"
            " r = a[5]; }")
        assert m.read_global("r") == 25

    def test_local_array(self):
        m = self.run_single(
            "shared int r; thread t() {"
            " int a[4]; a[1] = 3; a[2] = 4; r = a[1] * a[2]; }")
        assert m.read_global("r") == 12

    def test_memcpy(self):
        m = self.run_single(
            "shared int src[4] = {1,2,3,4}; shared int dst[8];"
            "thread t() { memcpy(dst, 2, src, 0, 4); }")
        assert [m.read_global("dst", i) for i in range(8)] == \
            [0, 0, 1, 2, 3, 4, 0, 0]

    def test_memcpy_with_offsets(self):
        m = self.run_single(
            "shared int src[4] = {1,2,3,4}; shared int dst[4];"
            "thread t() { memcpy(dst, 0, src, 2, 2); }")
        assert [m.read_global("dst", i) for i in range(4)] == [3, 4, 0, 0]

    def test_param_passing(self):
        m = self.run_single(
            "shared int r; thread t(int a, int b) { r = a * 10 + b; }",
            threads=[("t", (3, 4))])
        assert m.read_global("r") == 34

    def test_local_globals_are_per_thread(self):
        m = self.run_single(
            "local int g; shared int r0; shared int r1;"
            "thread t(int tid) { g = g + tid + 1;"
            " if (tid == 0) { r0 = g; } else { r1 = g; } }",
            threads=[("t", (0,)), ("t", (1,))])
        assert m.read_global("r0") == 1
        assert m.read_global("r1") == 2

    def test_output_statement(self):
        m = self.run_single("thread t() { output(42); output(43); }")
        assert [v for _t, v in m.output] == [42, 43]

    def test_assert_pass(self):
        m = self.run_single("thread t() { assert(1 == 1); }")
        assert not m.crashed

    def test_assert_failure_crashes_thread(self):
        m = self.run_single("thread t() { assert(1 == 2); }")
        assert m.crashed
        assert m.crashes[0].reason.startswith("assertion failed")

    def test_division_by_zero_yields_zero(self):
        m = self.run_single(
            "shared int r; shared int z; thread t() { r = 5 / z; }")
        assert m.read_global("r") == 0

    def test_constant_folding_still_correct(self):
        m = self.run_single(
            "shared int r; thread t() { r = (2 + 3) * (10 - 6); }")
        assert m.read_global("r") == 20


class TestReconvergence:
    """The Skipper reconvergence probe against this codegen's layout."""

    def _branches(self, prog):
        return [pc for pc, instr in enumerate(prog.code)
                if isinstance(instr, Branch)]

    def test_plain_if_reconverges_at_target(self):
        prog = compile_source(
            "shared int x; thread t() { if (x) { x = 1; } x = 2; }")
        branch_pc = self._branches(prog)[0]
        assert prog.reconvergence_of_branch(branch_pc) == \
            prog.code[branch_pc].target

    def test_if_else_reconverges_after_else(self):
        prog = compile_source(
            "shared int x; thread t() {"
            " if (x) { x = 1; } else { x = 2; } x = 3; }")
        branch_pc = self._branches(prog)[0]
        target = prog.code[branch_pc].target
        reconv = prog.reconvergence_of_branch(branch_pc)
        assert reconv is not None
        assert reconv > target  # past the else block

    def test_loop_branch_not_inferred(self):
        prog = compile_source(
            "shared int x; thread t() { while (x < 3) { x = x + 1; } }")
        branch_pc = self._branches(prog)[0]
        assert prog.reconvergence_of_branch(branch_pc) is None

    def test_for_loop_branch_not_inferred(self):
        prog = compile_source(
            "shared int x; thread t() {"
            " for (int i = 0; i < 3; i = i + 1) { x = x + 1; } }")
        branch_pc = self._branches(prog)[0]
        assert prog.reconvergence_of_branch(branch_pc) is None

    def test_if_inside_loop_reconverges(self):
        prog = compile_source(
            "shared int x; thread t() {"
            " while (x < 9) { if (x % 2) { x = x + 2; } x = x + 1; } }")
        branches = self._branches(prog)
        # first branch is the loop exit (None), second the if
        assert prog.reconvergence_of_branch(branches[0]) is None
        assert prog.reconvergence_of_branch(branches[1]) is not None
