"""Dynamic PDG construction tests (paper §3.1 definitions)."""

import pytest

from repro.machine.events import EV_LOAD, EV_STORE
from repro.pdg import build_dpdg
from repro.pdg.dpdg import CONFLICT, CONTROL, TRUE_LOCAL, TRUE_SHARED
from tests.conftest import run_program


def build(source, threads, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    return trace, build_dpdg(trace)


class TestSharedClassification:
    def test_address_shared_iff_multiple_threads(self):
        src = ("shared int x; shared int y;"
               "thread t(int tid) {"
               " if (tid == 0) { x = 1; y = 1; } else { x = 2; } }")
        trace, pdg = build(src, [("t", (0,)), ("t", (1,))])
        x_addr = trace.program.address_of("x")
        y_addr = trace.program.address_of("y")
        assert x_addr in pdg.shared_addresses
        assert y_addr not in pdg.shared_addresses

    def test_frames_never_shared(self):
        src = "thread t() { int a = 1; int b = a + 1; }"
        trace, pdg = build(src, [("t", ()), ("t", ())])
        prog = trace.program
        # all frame addresses lie at/after shared_words
        for addr in pdg.shared_addresses:
            assert addr < prog.shared_words


class TestTrueDependences:
    def test_register_flow_creates_arc(self):
        src = "shared int x; shared int y; thread t() { y = x + 1; }"
        trace, pdg = build(src, [("t", ())])
        # store of y depends (through ALU/registers) on the load of x
        mem = trace.memory_events()
        load_x = next(e for e in mem if e.kind == EV_LOAD)
        store_y = next(e for e in mem if e.kind == EV_STORE)
        # follow arcs backward from the store; must reach the load
        seen = set()
        frontier = [store_y.seq]
        while frontier:
            seq = frontier.pop()
            for arc in pdg.predecessors(seq):
                if arc.kind in (TRUE_LOCAL, TRUE_SHARED) and arc.dst not in seen:
                    seen.add(arc.dst)
                    frontier.append(arc.dst)
        assert load_x.seq in seen

    def test_memory_raw_arc_same_thread(self):
        src = "shared int x; thread t() { x = 5; int y = x; }"
        trace, pdg = build(src, [("t", ())])
        x_addr = trace.program.address_of("x")
        store = next(e for e in trace.memory_events()
                     if e.kind == EV_STORE and e.addr == x_addr)
        load = next(e for e in trace.memory_events()
                    if e.kind == EV_LOAD and e.addr == x_addr)
        arcs = pdg.predecessors(load.seq, kinds={TRUE_LOCAL, TRUE_SHARED})
        assert any(a.dst == store.seq for a in arcs)

    def test_shared_arc_classified_shared(self):
        # two threads touch x, so the same-thread RAW through x is shared
        src = ("shared int x;"
               "thread w() { x = 5; int y = x; }"
               "thread r() { int z = x; }")
        trace, pdg = build(src, [("w", ()), ("r", ())])
        shared_arcs = pdg.arcs_of_kind(TRUE_SHARED)
        assert shared_arcs

    def test_arc_points_backward(self):
        src = "shared int x; thread t() { x = 1; int y = x + 1; }"
        _trace, pdg = build(src, [("t", ())])
        for arc in pdg.arcs:
            assert arc.dst < arc.src


class TestControlArcs:
    def test_then_block_arc_to_branch_instance(self):
        src = ("shared int x = 1; shared int y;"
               "thread t() { if (x) { y = 7; } }")
        trace, pdg = build(src, [("t", ())])
        y_addr = trace.program.address_of("y")
        store = next(e for e in trace.memory_events()
                     if e.kind == EV_STORE and e.addr == y_addr)
        assert pdg.predecessors(store.seq, kinds={CONTROL})

    def test_loop_iterations_attach_to_latest_branch_instance(self):
        src = ("shared int x;"
               "thread t() { int i = 0; while (i < 3) {"
               " x = x + 1; i = i + 1; } }")
        trace, pdg = build(src, [("t", ())])
        x_addr = trace.program.address_of("x")
        stores = [e for e in trace.memory_events()
                  if e.kind == EV_STORE and e.addr == x_addr]
        branch_targets = []
        for store in stores:
            ctrl = pdg.predecessors(store.seq, kinds={CONTROL})
            assert ctrl
            branch_targets.append(max(a.dst for a in ctrl))
        # each iteration binds to a later branch instance
        assert branch_targets == sorted(branch_targets)
        assert len(set(branch_targets)) == 3


class TestConflictArcs:
    def test_write_write_conflict(self):
        src = "shared int x; thread t(int v) { x = v; }"
        trace, pdg = build(src, [("t", (1,)), ("t", (2,))])
        assert pdg.arcs_of_kind(CONFLICT)

    def test_no_conflict_on_private_data(self):
        src = "thread t() { int a = 1; a = a + 1; }"
        _trace, pdg = build(src, [("t", ()), ("t", ())])
        assert not pdg.arcs_of_kind(CONFLICT)

    def test_conflict_arcs_cross_threads(self):
        src = "shared int x; thread t(int v) { x = v; int y = x; }"
        trace, pdg = build(src, [("t", (1,)), ("t", (2,))])
        for arc in pdg.arcs_of_kind(CONFLICT):
            assert pdg.events[arc.src].tid != pdg.events[arc.dst].tid

    def test_intervening_write_cuts_conflict_arc(self):
        # t0 writes, t0 writes again, then t1 reads: the read's conflict
        # arc must go to the *last* write only
        src = ("shared int x; shared int go;"
               "thread w() { x = 1; x = 2; go = 1; }"
               "thread r() { while (go == 0) { } int y = x; }")
        trace, pdg = build(src, [("w", ()), ("r", ())], switch_prob=0.9,
                           seed=5)
        x_addr = trace.program.address_of("x")
        writes = [e for e in trace.memory_events()
                  if e.kind == EV_STORE and e.addr == x_addr]
        read = next((e for e in trace.memory_events()
                     if e.kind == EV_LOAD and e.addr == x_addr
                     and e.tid == 1), None)
        if read is None:
            pytest.skip("reader never reached the load under this schedule")
        arcs = [a for a in pdg.predecessors(read.seq, kinds={CONFLICT})]
        dsts = {a.dst for a in arcs}
        assert writes[0].seq not in dsts
        assert writes[-1].seq in dsts


class TestThreadViews:
    def test_td_pdg_has_no_conflict_arcs(self):
        src = "shared int x; thread t(int v) { x = v; int y = x; }"
        _trace, pdg = build(src, [("t", (1,)), ("t", (2,))])
        for arc in pdg.thread_arcs(0):
            assert arc.kind != CONFLICT

    def test_thread_vertices_sorted_and_disjoint(self):
        src = "shared int x; thread t(int v) { x = x + v; }"
        _trace, pdg = build(src, [("t", (1,)), ("t", (2,))])
        v0 = pdg.thread_vertices(0)
        v1 = pdg.thread_vertices(1)
        assert v0 == sorted(v0)
        assert not set(v0) & set(v1)
