"""Unit tests for the fuzz subsystem: generator determinism, the
fuzzing session driver, the minimizer, and corpus round-trips."""

import pytest

from repro.fuzz import (generate_program, load_corpus, minimize_program,
                        probe_program, rediscovered, run_fuzz, save_corpus)
from repro.fuzz.genprog import GeneratedProgram
from repro.fuzz.oracle import run_differential
from repro.lang import compile_source


class TestGenerator:
    def test_deterministic_in_seed(self):
        assert generate_program(17).source == generate_program(17).source

    def test_distinct_seeds_distinct_programs(self):
        sources = {generate_program(seed).source for seed in range(20)}
        assert len(sources) > 15

    def test_every_program_compiles(self):
        for seed in range(30):
            compile_source(generate_program(seed).source)  # must not raise

    def test_structure_matches_source(self):
        generated = generate_program(3)
        assert generated.n_threads == 2
        for tid in range(2):
            assert f"thread t{tid}()" in generated.source
        for stmt in generated.threads[0]:
            assert stmt in generated.source

    def test_replace_thread_copies(self):
        generated = generate_program(3)
        replaced = generated.replace_thread(0, ["output(1);"])
        assert replaced.threads[0] == ["output(1);"]
        assert generated.threads[0] != ["output(1);"]


class TestProbe:
    def test_probe_program_returns_plain_data(self):
        out = probe_program({"program_seed": 0, "master_seed": 0,
                             "probes": 2})
        assert out["program_seed"] == 0
        assert len(out["probes"]) == 2
        for probe in out["probes"]:
            assert probe["replay_divergence"] is None

    def test_probe_is_deterministic(self):
        payload = {"program_seed": 5, "master_seed": 0, "probes": 2}
        first = probe_program(payload)
        second = probe_program(payload)
        strip = lambda o: [{k: v for k, v in p.items()}
                           for p in o["probes"]]
        assert strip(first) == strip(second)


class TestSession:
    def test_program_capped_session(self):
        report = run_fuzz(budget=None, max_programs=12,
                          probes_per_program=1, workers=1)
        assert report.stats.programs == 12
        assert report.stats.probes == 12
        assert report.stats.replay_divergences == 0

    def test_serial_equals_parallel(self):
        serial = run_fuzz(budget=None, max_programs=10,
                          probes_per_program=1, workers=1)
        parallel = run_fuzz(budget=None, max_programs=10,
                            probes_per_program=1, workers=2)
        key = lambda r: sorted((f.program_seed, f.schedule_seed, f.kind)
                               for f in r.findings)
        assert key(serial) == key(parallel)
        assert serial.stats.violations == parallel.stats.violations

    def test_requires_some_bound(self):
        with pytest.raises(ValueError):
            run_fuzz(budget=None, max_programs=None)


class TestMinimizer:
    def _violating_finding(self):
        report = run_fuzz(budget=None, max_programs=20,
                          probes_per_program=2, workers=1)
        for finding in report.findings:
            if finding.kind == "violation":
                return finding
        pytest.fail("no violation found in 20 generated programs")

    def test_minimized_program_still_violates(self):
        finding = self._violating_finding()
        generated = generate_program(finding.program_seed)
        reduced = minimize_program(generated, finding.schedule_seed)
        assert sum(map(len, reduced.threads)) <= \
            sum(map(len, generated.threads))
        result = run_differential(reduced.source, finding.schedule_seed)
        assert result.online_verdict

    def test_refuses_to_minimize_non_violating(self):
        generated = GeneratedProgram(
            decls="shared int g0 = 0;\n",
            threads=[["output(0);"], ["output(0);"]])
        reduced = minimize_program(generated, seed=1)
        assert reduced.source == generated.source


class TestCorpus:
    def test_save_load_rediscover_roundtrip(self, tmp_path):
        report = run_fuzz(budget=None, max_programs=20,
                          probes_per_program=2, workers=1)
        entries = save_corpus(str(tmp_path), report.findings, limit=3)
        assert 1 <= len(entries) <= 3
        loaded = load_corpus(str(tmp_path))
        assert [e.key() for e in loaded] == [e.key() for e in entries]
        hits = rediscovered(report, loaded)
        assert [e.key() for e in hits] == [e.key() for e in loaded]
