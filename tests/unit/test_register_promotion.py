"""Register-promotion compiler pass tests."""

import pytest

from repro.core import OnlineSVD
from repro.isa.instructions import Load, Store
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler, SerialScheduler
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def run_serial(source, threads=None, promote=True):
    program = compile_source(source, promote_locals=promote)
    machine = Machine(program, threads or [("t", ())],
                      scheduler=SerialScheduler())
    machine.run()
    return machine


class TestSemanticsPreserved:
    @pytest.mark.parametrize("promote", [False, True])
    def test_arithmetic_unchanged(self, promote):
        machine = run_serial(
            "shared int r; thread t() {"
            " int a = 3; int b = a * 4; a = b - a; r = a + b; }",
            promote=promote)
        assert machine.read_global("r") == 21

    @pytest.mark.parametrize("promote", [False, True])
    def test_loops_unchanged(self, promote):
        machine = run_serial(
            "shared int r; thread t() {"
            " int s = 0; for (int i = 0; i < 6; i = i + 1) { s = s + i; }"
            " r = s; }", promote=promote)
        assert machine.read_global("r") == 15

    def test_concurrent_results_agree(self):
        for promote in (False, True):
            program = compile_source(COUNTER_LOCKED, promote_locals=promote)
            machine = Machine(program, [("worker", (25,)), ("worker", (25,))],
                              scheduler=RandomScheduler(seed=4,
                                                        switch_prob=0.5))
            machine.run()
            assert machine.read_global("counter") == 50, promote

    def test_shadowing_with_promotion(self):
        machine = run_serial(
            "shared int r; thread t() {"
            " int x = 1; if (1) { int x = 10; r = r + x; } r = r + x; }")
        assert machine.read_global("r") == 11


class TestCodeShape:
    def _memory_ops(self, source, promote):
        program = compile_source(source, promote_locals=promote)
        return sum(1 for i in program.code if isinstance(i, (Load, Store)))

    def test_promotion_removes_local_memory_traffic(self):
        src = ("shared int r; thread t() {"
               " int a = 1; int b = a + 1; int c = b + a; r = c; }")
        assert self._memory_ops(src, True) < self._memory_ops(src, False)

    def test_arrays_never_promoted(self):
        src = "shared int r; thread t() { int a[4]; a[0] = 1; r = a[0]; }"
        # array accesses must remain loads/stores
        assert self._memory_ops(src, True) >= 2

    def test_params_stay_in_frame(self):
        program = compile_source(
            "shared int r; thread t(int p) { r = p; }", promote_locals=True)
        assert program.threads["t"].param_offsets == (0,)
        # reading p is still a Load
        assert any(isinstance(i, Load) for i in program.code)

    def test_frame_shrinks(self):
        src = ("thread t() { int a = 1; int b = 2; int c = a + b;"
               " output(c); }")
        plain = compile_source(src, promote_locals=False)
        promoted = compile_source(src, promote_locals=True)
        assert promoted.threads["t"].frame_words < plain.threads["t"].frame_words


class TestDetectionUnderPromotion:
    def test_race_still_detected(self):
        program = compile_source(COUNTER_RACE, promote_locals=True)
        found = False
        for seed in range(5):
            svd = OnlineSVD(program)
            machine = Machine(program, [("worker", (30,)), ("worker", (30,))],
                              scheduler=RandomScheduler(seed=seed,
                                                        switch_prob=0.5),
                              observers=[svd])
            machine.run()
            if machine.read_global("counter") < 60:
                found = found or svd.report.dynamic_count > 0
        assert found

    def test_locked_still_silent(self):
        program = compile_source(COUNTER_LOCKED, promote_locals=True)
        for seed in range(3):
            svd = OnlineSVD(program)
            machine = Machine(program, [("worker", (20,)), ("worker", (20,))],
                              scheduler=RandomScheduler(seed=seed,
                                                        switch_prob=0.5),
                              observers=[svd])
            machine.run()
            assert svd.report.dynamic_count == 0
