"""Unit tests for the memory consistency-model layer.

Covers the :mod:`repro.machine.memmodel` registry and model contracts,
the TSO store-buffer semantics as observed through a live machine
(store-buffering litmus, FIFO message passing, read-your-writes
forwarding, fencing lock operations), the virtual drain processors'
scheduling contract, and checkpoint/restore of pending buffers.
"""

import pytest

from repro.lang import compile_source
from repro.machine import (Machine, MachineStatus, RandomScheduler,
                           ReplayScheduler, SerialScheduler, StrictModel,
                           TSOModel, record_execution, replay_execution,
                           resolve_model)
from repro.machine.memmodel import MODELS, _derive_capacity


class TestRegistry:
    def test_resolve_default_is_strict(self):
        assert isinstance(resolve_model(None), StrictModel)
        assert isinstance(resolve_model("strict"), StrictModel)

    def test_resolve_tso_carries_seed(self):
        model = resolve_model("tso", 41)
        assert isinstance(model, TSOModel)
        assert model.seed == 41

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_model("release-acquire")

    def test_registry_names(self):
        assert set(MODELS) == {"strict", "tso"}

    def test_model_flags(self):
        assert StrictModel.never_pending and StrictModel.inline_strict
        assert not TSOModel.never_pending
        assert not TSOModel.inline_strict


class TestCapacityDerivation:
    def test_deterministic(self):
        assert (_derive_capacity(7, 3, 2, 8)
                == _derive_capacity(7, 3, 2, 8))

    def test_in_range(self):
        for seed in range(20):
            for tid in range(4):
                cap = _derive_capacity(seed, tid, 2, 8)
                assert 2 <= cap <= 8

    def test_varies_with_seed_and_tid(self):
        caps = {_derive_capacity(seed, tid, 2, 8)
                for seed in range(16) for tid in range(4)}
        assert len(caps) > 1


class TestAttachContract:
    def test_double_attach_rejected(self):
        source = "shared int x[1] = 0;\nthread t() { x[0] = 1; }\n"
        program = compile_source(source)
        model = TSOModel(seed=1)
        Machine(program, [("t", ())], memmodel=model)
        with pytest.raises(ValueError):
            Machine(program, [("t", ())], memmodel=model)

    def test_string_model_resolved_by_machine(self):
        source = "shared int x[1] = 0;\nthread t() { x[0] = 1; }\n"
        program = compile_source(source)
        machine = Machine(program, [("t", ())], memmodel="tso")
        assert isinstance(machine.memmodel, TSOModel)


_SB_LITMUS = """
shared int x[1] = 0;
shared int y[1] = 0;
shared int r[2] = 0;

thread t0() {
    x[0] = 1;
    int a = y[0];
    r[0] = a;
}

thread t1() {
    y[0] = 1;
    int b = x[0];
    r[1] = b;
}
"""

_MP_LITMUS = """
shared int data[1] = 0;
shared int ready[1] = 0;
shared int got[1] = 0;
shared int val[1] = 0;

thread producer() {
    data[0] = 42;
    ready[0] = 1;
}

thread consumer() {
    int f = ready[0];
    got[0] = f;
    int d = data[0];
    val[0] = d;
}
"""

_RYW = """
shared int x[1] = 0;
shared int seen[1] = 0;

thread t() {
    x[0] = 5;
    int a = x[0];
    seen[0] = a;
}
"""

_LOCKED_COUNTER = """
shared int n[1] = 0;
lock m;

thread inc(int rounds) {
    int r = 0;
    while (r < rounds) {
        acquire(m);
        int v = n[0];
        n[0] = v + 1;
        release(m);
        r = r + 1;
    }
}
"""


def _run_litmus(source, threads, scheduler, memmodel):
    machine = Machine(compile_source(source), threads,
                      scheduler=scheduler, memmodel=memmodel)
    status = machine.run(max_steps=100_000)
    assert status == "finished"
    return machine


class TestStoreBufferingLitmus:
    """The canonical SB (Dekker) litmus: r0 == r1 == 0 is forbidden
    under strict/SC and allowed under TSO."""

    def _both_zero(self, seed, memmodel):
        machine = _run_litmus(
            _SB_LITMUS, [("t0", ()), ("t1", ())],
            RandomScheduler(seed=seed, switch_prob=0.5), memmodel)
        return (machine.read_global("r", 0) == 0
                and machine.read_global("r", 1) == 0)

    def test_strict_never_both_zero(self):
        assert not any(self._both_zero(seed, StrictModel())
                       for seed in range(100))

    def test_tso_reaches_both_zero(self):
        assert any(self._both_zero(seed, TSOModel(seed=seed))
                   for seed in range(100))


class TestMessagePassing:
    """TSO buffers are FIFO: a consumer that observed ``ready`` must
    also observe the ``data`` store that preceded it."""

    def test_no_reordered_publication(self):
        for seed in range(100):
            machine = _run_litmus(
                _MP_LITMUS, [("producer", ()), ("consumer", ())],
                RandomScheduler(seed=seed, switch_prob=0.5),
                TSOModel(seed=seed))
            if machine.read_global("got", 0) == 1:
                assert machine.read_global("val", 0) == 42


class TestReadYourWrites:
    def test_load_snoops_own_buffer(self):
        """Under a serial schedule the drain processor never runs before
        the thread's own load, so the value must come from the buffer."""
        machine = _run_litmus(_RYW, [("t", ())], SerialScheduler(),
                              TSOModel(seed=3))
        assert machine.read_global("seen", 0) == 5
        assert machine.read_global("x", 0) == 5  # drained by run end


class TestLockFencing:
    def test_locked_counter_exact_under_tso(self):
        """Lock operations are fencing RMWs: the locked counter loses no
        increments under TSO for any seed."""
        for seed in range(30):
            machine = _run_litmus(
                _LOCKED_COUNTER,
                [("inc", (5,)), ("inc", (5,))],
                RandomScheduler(seed=seed, switch_prob=0.5),
                TSOModel(seed=seed))
            assert machine.read_global("n", 0) == 10


class TestDrainScheduling:
    def test_strict_runnable_has_no_drain_ids(self):
        program = compile_source(_SB_LITMUS)
        machine = Machine(program, [("t0", ()), ("t1", ())])
        machine.run(max_steps=10)
        assert all(tid < machine._drain_base
                   for tid in machine._runnable_ids)

    def test_drain_steps_recorded_and_replayed(self):
        """Drain picks land in the recorded schedule as ids >= the drain
        base, and replaying the schedule with the same model seed
        reproduces the run exactly."""
        program = compile_source(_SB_LITMUS)
        threads = [("t0", ()), ("t1", ())]
        machine = Machine(program, threads,
                          scheduler=RandomScheduler(seed=11,
                                                    switch_prob=0.5),
                          record_schedule=True, memmodel=TSOModel(seed=11))
        machine.run(max_steps=100_000)
        schedule = machine.recorded_schedule
        assert any(tid >= machine._drain_base for tid in schedule)

        replayed = Machine(program, threads,
                           scheduler=ReplayScheduler(schedule),
                           memmodel=TSOModel(seed=11))
        replayed.run(max_steps=100_000)
        assert replayed.memory == machine.memory
        assert replayed.steps == machine.steps
        assert replayed.seq == machine.seq

    def test_recording_round_trips_model(self, tmp_path):
        """``Recording`` persists consistency + model seed, so a saved
        TSO run replays from disk without out-of-band state."""
        program = compile_source(_SB_LITMUS)
        threads = [("t0", ()), ("t1", ())]
        machine, recording = record_execution(
            program, threads,
            RandomScheduler(seed=11, switch_prob=0.5),
            max_steps=100_000, consistency="tso", model_seed=11)
        path = tmp_path / "run.recording"
        recording.save(str(path))
        from repro.machine import Recording
        loaded = Recording.load(str(path))
        assert loaded.consistency == "tso"
        assert loaded.model_seed == 11
        replayed = replay_execution(program, loaded)
        assert replayed.memory == machine.memory
        assert replayed.output == machine.output


class TestCheckpointRestore:
    def test_pending_buffers_survive_rollback(self):
        """Checkpoint mid-run with non-empty store buffers, overshoot,
        restore, and finish: the final state matches an uninterrupted
        run of the same seeds."""
        program = compile_source(_SB_LITMUS)
        threads = [("t0", ()), ("t1", ())]

        def final_state(rollback):
            machine = Machine(program, threads,
                              scheduler=RandomScheduler(seed=4,
                                                        switch_prob=0.5),
                              record_schedule=True,
                              memmodel=TSOModel(seed=4))
            if rollback:
                machine.run(max_steps=3)
                # a step-limited run parks the status; clear it so the
                # checkpoint (and the post-restore run) resume
                machine.status = MachineStatus.RUNNING
                snapshot = machine.checkpoint()
                machine.run(max_steps=8)
                machine.restore(snapshot)
            machine.run(max_steps=100_000)
            return (machine.memory, machine.steps,
                    machine.recorded_schedule)

        assert final_state(False) == final_state(True)

    def test_snapshot_isolated_from_live_buffers(self):
        model = TSOModel(seed=9)
        program = compile_source(_SB_LITMUS)
        machine = Machine(program, [("t0", ()), ("t1", ())],
                          scheduler=SerialScheduler(), memmodel=model)
        machine.run(max_steps=1)  # t0's first store is now buffered
        machine.status = MachineStatus.RUNNING
        snap = model.snapshot()
        assert model.pending(0) == 1
        machine.run(max_steps=100_000)
        assert model.pending(0) == 0
        model.restore(snap)
        assert model.pending(0) == 1
