"""BER controller unit tests."""

import pytest

from repro.ber import BerController, BerOutcome, SwitchableScheduler
from repro.lang import compile_source
from repro.machine import MachineStatus, RandomScheduler, SerialScheduler
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def make_controller(source, threads, seed=1, switch=0.5, **kwargs):
    prog = compile_source(source)
    return BerController(prog, threads,
                         RandomScheduler(seed=seed, switch_prob=switch),
                         **kwargs)


class TestSwitchableScheduler:
    def test_delegates_to_normal(self):
        sched = SwitchableScheduler(SerialScheduler())
        assert sched.pick([0, 1], None) == 0

    def test_serial_mode_sticks_to_current(self):
        sched = SwitchableScheduler(RandomScheduler(seed=0, switch_prob=1.0))
        sched.serial_mode = True
        assert sched.pick([0, 1], 1) == 1

    def test_snapshot_roundtrip(self):
        sched = SwitchableScheduler(RandomScheduler(seed=0))
        state = sched.snapshot()
        sched.serial_mode = True
        sched.pick([0, 1], None)
        sched.restore(state)
        assert not sched.serial_mode

    def test_restore_replays_the_inner_pick_stream(self):
        """A rollback must rewind the delegate's randomness too: after
        restore, the scheduler re-makes exactly the picks it made the
        first time."""
        sched = SwitchableScheduler(RandomScheduler(seed=7,
                                                    switch_prob=0.9))
        for _ in range(4):
            sched.pick([0, 1, 2], 0)
        state = sched.snapshot()
        first = [sched.pick([0, 1, 2], 0) for _ in range(12)]
        sched.restore(state)
        assert [sched.pick([0, 1, 2], 0) for _ in range(12)] == first

    def test_restore_reinstates_serial_mode(self):
        sched = SwitchableScheduler(RandomScheduler(seed=1,
                                                    switch_prob=1.0))
        sched.serial_mode = True
        state = sched.snapshot()
        sched.serial_mode = False
        sched.pick([0, 1], 0)
        sched.restore(state)
        assert sched.serial_mode
        # serial mode sticks with the current thread
        assert sched.pick([0, 1], 1) == 1

    def test_snapshot_is_isolated_from_later_picks(self):
        """The snapshot is a value, not a reference: picking after
        snapshotting must not mutate the captured state."""
        sched = SwitchableScheduler(RandomScheduler(seed=3,
                                                    switch_prob=0.8))
        state = sched.snapshot()
        burned = [sched.pick([0, 1, 2], 0) for _ in range(20)]
        sched.restore(state)
        replay = [sched.pick([0, 1, 2], 0) for _ in range(20)]
        assert replay == burned


class TestBerOutcomeOverhead:
    @staticmethod
    def outcome(wasted, total):
        return BerOutcome(status=MachineStatus.FINISHED, rollbacks=1,
                          violations_seen=1, wasted_steps=wasted,
                          total_steps=total, crashed=False)

    def test_zero_steps_is_zero_overhead(self):
        # a run that never stepped (e.g. immediate deadlock) must not
        # divide by zero
        assert self.outcome(0, 0).overhead_fraction == 0.0

    def test_all_wasted(self):
        # everything executed was rolled back: the whole run was waste
        assert self.outcome(500, 500).overhead_fraction == 1.0

    def test_no_rollbacks_no_overhead(self):
        assert self.outcome(0, 1234).overhead_fraction == 0.0

    def test_fraction_in_between(self):
        assert self.outcome(250, 1000).overhead_fraction == 0.25


class TestBerController:
    def test_clean_program_no_rollbacks(self):
        controller = make_controller(
            COUNTER_LOCKED, [("worker", (15,)), ("worker", (15,))])
        outcome = controller.run()
        assert outcome.rollbacks == 0
        assert outcome.status == MachineStatus.FINISHED
        assert controller.machine.read_global("counter") == 30

    def test_racy_program_triggers_rollbacks(self):
        rolled = False
        for seed in range(5):
            controller = make_controller(
                COUNTER_RACE, [("worker", (25,)), ("worker", (25,))],
                seed=seed)
            outcome = controller.run()
            rolled = rolled or outcome.rollbacks > 0
            assert outcome.status in (MachineStatus.FINISHED,
                                      MachineStatus.STEP_LIMIT)
        assert rolled

    def test_rollback_accounting(self):
        for seed in range(5):
            controller = make_controller(
                COUNTER_RACE, [("worker", (25,)), ("worker", (25,))],
                seed=seed, checkpoint_interval=200, recovery_window=500)
            outcome = controller.run()
            if outcome.rollbacks:
                assert outcome.wasted_steps > 0
                assert outcome.total_steps > controller.machine.steps
                assert 0 < outcome.overhead_fraction < 1
                return
        pytest.fail("no rollback observed")

    def test_max_rollbacks_terminates(self):
        controller = make_controller(
            COUNTER_RACE, [("worker", (40,)), ("worker", (40,))],
            seed=1, max_rollbacks=2, checkpoint_interval=100,
            recovery_window=50)
        outcome = controller.run(max_steps=500_000)
        assert outcome.rollbacks <= 2
        assert outcome.status in (MachineStatus.FINISHED,
                                  MachineStatus.STEP_LIMIT)

    def test_invalid_checkpoint_interval(self):
        prog = compile_source(COUNTER_LOCKED)
        with pytest.raises(ValueError):
            BerController(prog, [("worker", (5,)), ("worker", (5,))],
                          SerialScheduler(), checkpoint_interval=0)

    def test_step_limit_respected(self):
        controller = make_controller(
            COUNTER_LOCKED, [("worker", (500,)), ("worker", (500,))])
        outcome = controller.run(max_steps=1000)
        assert outcome.status == MachineStatus.STEP_LIMIT
