"""BER controller unit tests."""

import pytest

from repro.ber import BerController, SwitchableScheduler
from repro.lang import compile_source
from repro.machine import MachineStatus, RandomScheduler, SerialScheduler
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def make_controller(source, threads, seed=1, switch=0.5, **kwargs):
    prog = compile_source(source)
    return BerController(prog, threads,
                         RandomScheduler(seed=seed, switch_prob=switch),
                         **kwargs)


class TestSwitchableScheduler:
    def test_delegates_to_normal(self):
        sched = SwitchableScheduler(SerialScheduler())
        assert sched.pick([0, 1], None) == 0

    def test_serial_mode_sticks_to_current(self):
        sched = SwitchableScheduler(RandomScheduler(seed=0, switch_prob=1.0))
        sched.serial_mode = True
        assert sched.pick([0, 1], 1) == 1

    def test_snapshot_roundtrip(self):
        sched = SwitchableScheduler(RandomScheduler(seed=0))
        state = sched.snapshot()
        sched.serial_mode = True
        sched.pick([0, 1], None)
        sched.restore(state)
        assert not sched.serial_mode


class TestBerController:
    def test_clean_program_no_rollbacks(self):
        controller = make_controller(
            COUNTER_LOCKED, [("worker", (15,)), ("worker", (15,))])
        outcome = controller.run()
        assert outcome.rollbacks == 0
        assert outcome.status == MachineStatus.FINISHED
        assert controller.machine.read_global("counter") == 30

    def test_racy_program_triggers_rollbacks(self):
        rolled = False
        for seed in range(5):
            controller = make_controller(
                COUNTER_RACE, [("worker", (25,)), ("worker", (25,))],
                seed=seed)
            outcome = controller.run()
            rolled = rolled or outcome.rollbacks > 0
            assert outcome.status in (MachineStatus.FINISHED,
                                      MachineStatus.STEP_LIMIT)
        assert rolled

    def test_rollback_accounting(self):
        for seed in range(5):
            controller = make_controller(
                COUNTER_RACE, [("worker", (25,)), ("worker", (25,))],
                seed=seed, checkpoint_interval=200, recovery_window=500)
            outcome = controller.run()
            if outcome.rollbacks:
                assert outcome.wasted_steps > 0
                assert outcome.total_steps > controller.machine.steps
                assert 0 < outcome.overhead_fraction < 1
                return
        pytest.fail("no rollback observed")

    def test_max_rollbacks_terminates(self):
        controller = make_controller(
            COUNTER_RACE, [("worker", (40,)), ("worker", (40,))],
            seed=1, max_rollbacks=2, checkpoint_interval=100,
            recovery_window=50)
        outcome = controller.run(max_steps=500_000)
        assert outcome.rollbacks <= 2
        assert outcome.status in (MachineStatus.FINISHED,
                                  MachineStatus.STEP_LIMIT)

    def test_invalid_checkpoint_interval(self):
        prog = compile_source(COUNTER_LOCKED)
        with pytest.raises(ValueError):
            BerController(prog, [("worker", (5,)), ("worker", (5,))],
                          SerialScheduler(), checkpoint_interval=0)

    def test_step_limit_respected(self):
        controller = make_controller(
            COUNTER_LOCKED, [("worker", (500,)), ("worker", (500,))])
        outcome = controller.run(max_steps=1000)
        assert outcome.status == MachineStatus.STEP_LIMIT
