"""Online SVD detector tests (paper §4.2-4.3, Figure 7)."""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.core.cu import Cu, merge_cus
from tests.conftest import (
    BENIGN_RACE, COUNTER_LOCKED, COUNTER_RACE, run_with_svd,
)


class TestDetection:
    def test_detects_lost_update_race(self):
        found = False
        for seed in range(6):
            machine, svd = run_with_svd(
                COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
                seed=seed, switch_prob=0.5)
            if machine.read_global("counter") < 60:
                found = found or svd.report.dynamic_count > 0
        assert found

    def test_silent_on_locked_counter(self):
        for seed in range(4):
            _m, svd = run_with_svd(
                COUNTER_LOCKED, [("worker", (30,)), ("worker", (30,))],
                seed=seed, switch_prob=0.5)
            assert svd.report.dynamic_count == 0, seed

    def test_silent_on_benign_race(self):
        """The Figure 1 headline: serializable data races are not reported."""
        for seed in range(4):
            _m, svd = run_with_svd(
                BENIGN_RACE, [("locker", (20,)), ("checker", (20,))],
                seed=seed, switch_prob=0.5)
            assert svd.report.dynamic_count == 0, seed

    def test_single_thread_never_reports(self):
        src = ("shared int x; thread t() { int i = 0; while (i < 50) {"
               " x = x + 1; i = i + 1; } }")
        _m, svd = run_with_svd(src, [("t", ())])
        assert svd.report.dynamic_count == 0

    def test_read_only_sharing_never_reports(self):
        src = ("shared int table[8] = {1,2,3,4,5,6,7,8}; shared int r0;"
               "shared int r1;"
               "thread t(int tid) { int s = 0; int i = 0; while (i < 8) {"
               " s = s + table[i]; i = i + 1; }"
               " if (tid == 0) { r0 = s; } else { r1 = s; } }")
        _m, svd = run_with_svd(src, [("t", (0,)), ("t", (1,))],
                               switch_prob=0.7)
        assert svd.report.dynamic_count == 0

    def test_report_sites_are_buggy_statements(self):
        machine, svd = run_with_svd(
            COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
            seed=1, switch_prob=0.5)
        texts = {svd.program.locs[v.loc].text for v in svd.report}
        assert texts <= {"int c = counter;", "counter = (c + 1);"}

    def test_violation_records_conflicting_thread(self):
        _m, svd = run_with_svd(
            COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
            seed=1, switch_prob=0.5)
        for v in svd.report:
            assert v.other_tid != v.tid
            assert v.other_tid >= 0


class TestCuAccounting:
    def test_cus_created_and_closed_balance(self):
        _m, svd = run_with_svd(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        # after on_finish every CU is closed
        assert svd.open_cus == 0
        assert svd.cus_created == svd.cus_closed

    def test_cu_records_logged_at_closure(self):
        _m, svd = run_with_svd(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        assert len(svd.log.cu_records) == svd.cus_closed
        reasons = {r.reason for r in svd.log.cu_records}
        assert reasons <= {"stored-shared-load", "remote-true-dep",
                           "thread-end"}

    def test_directory_empty_after_finish(self):
        _m, svd = run_with_svd(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        assert svd.tracked_state_words() == 0
        assert not svd.trackers

    def test_instruction_count_matches_machine(self):
        machine, svd = run_with_svd(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        assert svd.instructions == machine.seq

    def test_cus_per_million(self):
        _m, svd = run_with_svd(
            COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        expected = svd.cus_created * 1e6 / svd.instructions
        assert svd.cus_per_million() == pytest.approx(expected)


class TestConfigKnobs:
    def test_block_size_validation(self):
        from repro.lang import compile_source
        prog = compile_source("thread t() { }")
        with pytest.raises(ValueError):
            OnlineSVD(prog, SvdConfig(block_size=0))

    def test_larger_blocks_false_sharing(self):
        """With giant blocks, unrelated variables alias into one block and
        false conflicts appear on an otherwise clean program."""
        src = ("shared int a; shared int b;"
               "thread ta(int n) { int i = 0; while (i < n) {"
               " a = a + 1; i = i + 1; } }"
               "thread tb(int n) { int i = 0; while (i < n) {"
               " b = b + 1; i = i + 1; } }")
        _m, svd_word = run_with_svd(src, [("ta", (20,)), ("tb", (20,))],
                                    switch_prob=0.6)
        _m, svd_big = run_with_svd(src, [("ta", (20,)), ("tb", (20,))],
                                   switch_prob=0.6,
                                   config=SvdConfig(block_size=64))
        assert svd_word.report.dynamic_count == 0
        assert svd_big.report.dynamic_count > 0

    def test_address_deps_catch_queue_race(self):
        """Figure 9 mitigation: with address dependences off, the
        independent-computation stores stop checking the index CU."""
        from repro.workloads import queue_region
        wl = queue_region(fixed=False, producers=3, items=12)
        from repro.machine import RandomScheduler
        results = {}
        for use_addr in (True, False):
            svd = OnlineSVD(wl.program, SvdConfig(use_address_deps=use_addr))
            m = wl.make_machine(RandomScheduler(seed=2, switch_prob=0.6),
                                observers=[svd])
            m.run()
            results[use_addr] = svd.report.dynamic_count
        assert results[True] >= results[False]

    def test_check_all_blocks_reports_at_least_as_much(self):
        for seed in (1, 2):
            _m, inputs_only = run_with_svd(
                COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
                seed=seed, switch_prob=0.5)
            _m, all_blocks = run_with_svd(
                COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
                seed=seed, switch_prob=0.5,
                config=SvdConfig(check_all_blocks=True))
            assert (all_blocks.report.dynamic_count
                    >= inputs_only.report.dynamic_count)

    def test_log_can_be_disabled(self):
        _m, svd = run_with_svd(
            COUNTER_RACE, [("worker", (10,)), ("worker", (10,))],
            config=SvdConfig(log_communications=False))
        assert not svd.log.entries


class TestMergeMachinery:
    def test_merge_empty_creates_fresh(self):
        cu = merge_cus([], tid=0, seq=5)
        assert cu.active
        assert cu.tid == 0
        assert not cu.rs and not cu.ws

    def test_merge_unions_sets(self):
        a = Cu(0, 0)
        a.add_read(1)
        a.add_write(2)
        b = Cu(0, 1)
        b.add_read(3)
        merged = merge_cus([a, b], tid=0, seq=2)
        assert merged.rs >= {1, 3}
        assert 2 in merged.ws

    def test_merge_forwards_stale_references(self):
        a = Cu(0, 0)
        b = Cu(0, 1)
        merged = merge_cus([a, b], tid=0, seq=2)
        assert a.resolve() is merged
        assert b.resolve() is merged

    def test_merge_skips_inactive(self):
        a = Cu(0, 0)
        a.active = False
        b = Cu(0, 1)
        merged = merge_cus([a, b], tid=0, seq=2)
        assert merged is b

    def test_merge_idempotent_on_single(self):
        a = Cu(0, 0)
        assert merge_cus([a, a], tid=0, seq=1) is a

    def test_add_read_after_write_not_input(self):
        cu = Cu(0, 0)
        cu.add_write(7)
        cu.add_read(7)
        assert 7 not in cu.rs
        assert 7 in cu.ws
