"""Serve-mode unit tests: the degradation ladder, the analysis
breaker, incremental engine drives, the status endpoint, and small
in-process supervisor runs.

The chaos-style integration suite (faults, drains, subprocess signals)
lives in ``tests/integration/test_serve_chaos.py``; this file pins the
component contracts the supervisor composes.
"""

import io
import json
import urllib.request

import pytest

import repro.obs as obs
from repro.engine import DetectorEngine
from repro.harness.heartbeat import ServeHeartbeat
from repro.machine import Machine, RandomScheduler
from repro.serve import (LEVELS, AnalysisBreaker, DegradationLadder,
                         ServeConfig, StatusServer, Supervisor)
from repro.workloads import WORKLOADS


class TestDegradationLadder:
    def test_no_budget_pins_full(self):
        ladder = DegradationLadder(None)
        ladder.note_events(10**9, now=0.0)
        ladder.note_events(10**9, now=1.0)
        assert ladder.maybe_transition(now=10.0) is None
        assert ladder.level == "full"

    def test_degrades_one_level_at_a_time(self):
        ladder = DegradationLadder(100.0, dwell=0.0)
        ladder.note_events(0, now=0.0)
        ladder.note_events(1000, now=1.0)  # 1000 ev/s >> budget
        assert ladder.maybe_transition(now=1.0) == ("full", "sampled")
        assert ladder.maybe_transition(now=1.0) == ("sampled", "paused")
        # already at the bottom: stays there, no exception, no death
        assert ladder.maybe_transition(now=1.0) is None
        assert ladder.level == "paused"

    def test_dwell_prevents_flapping(self):
        ladder = DegradationLadder(100.0, dwell=5.0)
        ladder.note_events(0, now=0.0)
        ladder.note_events(1000, now=1.0)
        assert ladder.maybe_transition(now=1.0) is None  # dwell not met
        assert ladder.maybe_transition(now=6.0) == ("full", "sampled")
        # the second hop needs its own dwell at the new level
        assert ladder.maybe_transition(now=6.1) is None

    def test_recovers_below_hysteresis_band(self):
        ladder = DegradationLadder(100.0, recover_fraction=0.5, dwell=0.0)
        ladder.note_events(0, now=0.0)
        ladder.note_events(1000, now=1.0)
        assert ladder.maybe_transition(now=1.0) == ("full", "sampled")
        # 75 ev/s is under budget but inside the hysteresis band: hold
        ladder._samples.clear()
        ladder.note_events(0, now=2.0)
        ladder.note_events(75, now=3.0)
        assert ladder.maybe_transition(now=3.0) is None
        # 10 ev/s is below recover_fraction * budget: recover
        ladder._samples.clear()
        ladder.note_events(0, now=4.0)
        ladder.note_events(10, now=5.0)
        assert ladder.maybe_transition(now=5.0) == ("sampled", "full")

    def test_transitions_counted_in_obs_and_snapshot(self):
        with obs.session(tracing=False) as handle:
            ladder = DegradationLadder(100.0, dwell=0.0)
            ladder.note_events(0, now=0.0)
            ladder.note_events(1000, now=1.0)
            ladder.maybe_transition(now=1.0)
        counters = handle.registry.snapshot()["counters"]
        assert counters["serve.ladder.full_to_sampled"] == 1
        snap = ladder.snapshot()
        assert snap["level"] == "sampled"
        assert snap["transitions"] == [
            {"ts": pytest.approx(1.0, abs=0.001),
             "from": "full", "to": "sampled"}]

    def test_levels_vocabulary(self):
        assert LEVELS == ("full", "sampled", "paused")

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            DegradationLadder(-1.0)
        with pytest.raises(ValueError):
            DegradationLadder(100.0, recover_fraction=1.5)


class TestAnalysisBreaker:
    def test_opens_at_threshold_once(self):
        breaker = AnalysisBreaker(threshold=2)
        assert breaker.record_failure("svd") is False
        assert breaker.record_failure("svd") is True    # opens now
        assert breaker.record_failure("svd") is False   # already open
        assert breaker.open == ["svd"]
        assert breaker.filter(["svd", "frd"]) == ["frd"]

    def test_counts_per_analysis(self):
        breaker = AnalysisBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("svd")
            breaker.record_failure("frd")
        assert breaker.open == []
        assert breaker.snapshot()["failures"] == {"frd": 2, "svd": 2}

    def test_obs_counters(self):
        with obs.session(tracing=False) as handle:
            breaker = AnalysisBreaker(threshold=1)
            breaker.record_failure("svd")
        counters = handle.registry.snapshot()["counters"]
        assert counters["serve.breaker.failure"] == 1
        assert counters["serve.breaker.opened"] == 1


def _fresh_machine(workload, seed=7):
    return workload.make_machine(
        RandomScheduler(seed=seed, switch_prob=0.3))


class TestMachineDrive:
    """The incremental drive must be indistinguishable from
    ``run_machine`` -- same seed, same reports, same status."""

    @pytest.mark.parametrize("name", ["apache", "txn-bank"])
    @pytest.mark.parametrize("chunk", [1, 64, 100000])
    def test_differential_vs_run_machine(self, name, chunk):
        workload = WORKLOADS[name]()
        reference = DetectorEngine(workload.program, ["svd"]).run_machine(
            _fresh_machine(workload), max_steps=3000)
        drive = DetectorEngine(workload.program, ["svd"]).drive_machine(
            _fresh_machine(workload), max_steps=3000)
        while drive.advance(chunk):
            pass
        result = drive.finish()
        assert result.status == reference.status
        assert result.end_seq == reference.end_seq
        assert (len(result.reports["svd"].violations)
                == len(reference.reports["svd"].violations))

    def test_finish_without_advance_runs_everything(self):
        workload = WORKLOADS["apache"]()
        reference = DetectorEngine(workload.program, ["svd"]).run_machine(
            _fresh_machine(workload), max_steps=2000)
        drive = DetectorEngine(workload.program, ["svd"]).drive_machine(
            _fresh_machine(workload), max_steps=2000)
        result = drive.finish()
        assert result.end_seq == reference.end_seq

    def test_abort_reports_partial_truthfully(self):
        workload = WORKLOADS["apache"]()
        drive = DetectorEngine(workload.program, ["svd"]).drive_machine(
            _fresh_machine(workload), max_steps=5000)
        drive.advance(500)
        result = drive.abort("deadline")
        assert result.status == "aborted:deadline"
        assert 0 < result.end_seq <= drive.machine.seq
        assert "svd" in result.reports

    def test_finalizes_only_once(self):
        from repro.engine import EngineError
        workload = WORKLOADS["apache"]()
        drive = DetectorEngine(workload.program, ["svd"]).drive_machine(
            _fresh_machine(workload), max_steps=500)
        drive.finish()
        with pytest.raises(EngineError):
            drive.abort("again")


class TestStatusServer:
    def test_routes_and_errors(self):
        server = StatusServer(port=0)
        server.route("/status", lambda: {"answer": 42})
        server.route("/boom", lambda: 1 / 0)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"

            def get(path):
                try:
                    with urllib.request.urlopen(base + path) as resp:
                        return resp.status, json.load(resp)
                except urllib.error.HTTPError as err:
                    return err.code, json.load(err)

            assert get("/healthz") == (200, {"ok": True})
            assert get("/status") == (200, {"answer": 42})
            assert get("/status/") == (200, {"answer": 42})
            code, body = get("/nope")
            assert code == 404 and "/status" in body["routes"]
            code, body = get("/boom")
            assert code == 500 and "ZeroDivisionError" in body["error"]
        finally:
            server.stop()


class TestSupervisorSmall:
    def test_clean_fleet_completes_and_reports(self):
        hb = ServeHeartbeat(total=4, stream=io.StringIO())
        config = ServeConfig(workloads=("apache",), executions=4,
                             concurrency=2, max_steps=2000, chunk=500,
                             heartbeat=hb)
        supervisor = Supervisor(config)
        outcome = supervisor.run()
        assert outcome in ("ok", "violations")
        totals = supervisor.totals
        assert totals.launched == totals.completed == 4
        assert totals.failed == 0
        final = hb.summary()
        assert final["final"] is True
        assert final["completed"] == 4
        assert "interrupted" not in final
        assert final["level"] == "full"

    def test_per_execution_seeds_are_deterministic(self):
        def run():
            supervisor = Supervisor(ServeConfig(
                workloads=("apache",), executions=3, concurrency=3,
                max_steps=1500))
            supervisor.run()
            return [(e.seed, e.events, e.violations)
                    for _, e in sorted(supervisor.execs.items())]
        assert run() == run()

    def test_http_endpoint_serves_fleet_snapshot(self, tmp_path):
        port_file = tmp_path / "port"
        config = ServeConfig(workloads=("apache",), executions=2,
                             concurrency=1, max_steps=1500,
                             http_port=0, port_file=str(port_file))
        supervisor = Supervisor(config)
        outcome = supervisor.run()
        assert outcome in ("ok", "violations")
        # the endpoint is down after run(); the port file proves it was
        # bound, and the snapshot functions still work in-process
        assert port_file.read_text().strip().isdigit()
        snap = supervisor.status_snapshot()
        assert snap["totals"]["completed"] == 2
        assert snap["ladder"]["level"] == "full"
        assert snap["draining"] is False

    def test_shutdown_before_launch_interrupts_truthfully(self):
        supervisor = Supervisor(ServeConfig(
            workloads=("apache",), executions=5, concurrency=1,
            max_steps=1500))
        supervisor.request_shutdown("test")
        outcome = supervisor.run()
        assert outcome == "interrupted"
        assert supervisor.totals.launched == 0

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError):
            ServeConfig(workloads=("nonesuch",))
