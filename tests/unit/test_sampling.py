"""Segment-sampling tests (paper §6.1)."""

import pytest

from repro.core import OnlineSVD
from repro.harness import (SegmentSampler, evenly_spaced_windows,
                           run_workload)
from repro.machine import RandomScheduler
from repro.workloads import pgsql_oltp


class TestWindows:
    def test_evenly_spaced(self):
        windows = evenly_spaced_windows(1000, segments=4, segment_length=100)
        assert windows == [(0, 100), (250, 350), (500, 600), (750, 850)]

    def test_validation(self):
        with pytest.raises(ValueError):
            evenly_spaced_windows(100, segments=0, segment_length=10)
        with pytest.raises(ValueError):
            evenly_spaced_windows(100, segments=3, segment_length=50)

    def test_sampler_rejects_overlap(self):
        workload = pgsql_oltp()
        with pytest.raises(ValueError):
            SegmentSampler(workload.program, [(0, 100), (50, 150)])

    def test_sampler_rejects_empty_window(self):
        workload = pgsql_oltp()
        with pytest.raises(ValueError):
            SegmentSampler(workload.program, [(10, 10)])


class TestSampling:
    def _run(self, windows, seed=1):
        workload = pgsql_oltp(txns=40)
        sampler = SegmentSampler(workload.program, windows)
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5),
            observers=[sampler])
        machine.run()
        return machine, sampler

    def test_segments_observe_window_sized_slices(self):
        machine, sampler = self._run([(100, 1100), (5000, 6000)])
        assert len(sampler.segments) == 2
        assert sampler.segments[0].instructions == 1000
        assert sampler.segments[1].instructions == 1000

    def test_segment_detectors_independent(self):
        _m, sampler = self._run([(0, 2000), (4000, 6000)])
        first, second = sampler.segments
        assert first.detector is not second.detector
        assert first.detector.cus_created > 0
        # each segment closed its CUs at the window boundary
        assert first.detector.open_cus == 0
        assert second.detector.open_cus == 0

    def test_final_partial_segment_closed_at_machine_end(self):
        machine, sampler = self._run([(0, 10_000_000)])
        assert len(sampler.segments) == 1
        assert sampler.segments[0].instructions == machine.seq

    def test_static_union_tracks_code_size_not_length(self):
        """Per the paper: the same code exercised in every segment means
        segment static reports barely grow when unioned."""
        _m, sampler = self._run([(0, 3000), (6000, 9000), (12000, 15000)])
        per_segment = [s.static_reports for s in sampler.segments]
        union = sampler.union_static_reports()
        assert union <= sum(per_segment)
        assert union <= max(per_segment) + 4

    def test_sampled_rates_approximate_full_run(self):
        """Dynamic FP *rate* measured from samples approximates the
        full-run rate (the justification for sampling long executions)."""
        workload = pgsql_oltp(txns=40)
        full = run_workload(workload, seed=1, switch_prob=0.5,
                            run_frd=False)
        _m, sampler = self._run([(0, 4000), (6000, 10000), (12000, 16000)])
        if full.svd.dynamic_total == 0:
            pytest.skip("no reports in full run")
        full_rate = full.svd.dynamic_total / full.instructions
        sampled_rate = (sampler.total_dynamic_reports()
                        / max(1, sampler.total_instructions()))
        assert sampled_rate == pytest.approx(full_rate, rel=1.0, abs=0.01)
