"""Vector clock unit tests."""

import pytest

from repro.detectors.vector_clock import VectorClock


class TestBasics:
    def test_zero_initialised(self):
        vc = VectorClock(3)
        assert vc.clocks == [0, 0, 0]

    def test_explicit_clocks(self):
        vc = VectorClock(2, [3, 4])
        assert vc.clocks == [3, 4]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(2, [1, 2, 3])

    def test_tick(self):
        vc = VectorClock(2)
        vc.tick(1)
        assert vc.clocks == [0, 1]

    def test_copy_is_independent(self):
        vc = VectorClock(2, [1, 2])
        other = vc.copy()
        other.tick(0)
        assert vc.clocks == [1, 2]


class TestOrdering:
    def test_join_takes_componentwise_max(self):
        a = VectorClock(3, [1, 5, 2])
        b = VectorClock(3, [4, 3, 2])
        a.join(b)
        assert a.clocks == [4, 5, 2]

    def test_happens_before_strict(self):
        a = VectorClock(2, [1, 2])
        b = VectorClock(2, [1, 3])
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_equal_clocks_not_happens_before(self):
        a = VectorClock(2, [1, 2])
        b = VectorClock(2, [1, 2])
        assert not a.happens_before(b)
        assert a.ordered_with(b)

    def test_concurrent_clocks(self):
        a = VectorClock(2, [2, 0])
        b = VectorClock(2, [0, 2])
        assert not a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.ordered_with(b)

    def test_transitivity_via_join(self):
        a = VectorClock(3, [1, 0, 0])
        b = VectorClock(3, [0, 1, 0])
        b.join(a)
        b.tick(1)
        c = VectorClock(3, [0, 0, 1])
        c.join(b)
        c.tick(2)
        assert a.happens_before(c)

    def test_equality(self):
        assert VectorClock(2, [1, 2]) == VectorClock(2, [1, 2])
        assert VectorClock(2, [1, 2]) != VectorClock(2, [2, 1])
        assert VectorClock(2) != object()
