"""Violation report and a-posteriori log unit tests."""

import pytest

from repro.core.posteriori import CuLogRecord, LogEntry, PosterioriLog
from repro.core.report import Violation, ViolationReport
from repro.isa.program import Program, SourceLoc


def make_violation(loc=0, seq=0, kind="serializability-violation",
                   address=0, tid=0):
    return Violation(detector="svd", seq=seq, tid=tid, loc=loc,
                     address=address, kind=kind)


class TestViolationReport:
    def test_dynamic_counts_every_instance(self):
        report = ViolationReport("svd")
        for i in range(5):
            report.add(make_violation(loc=1, seq=i))
        assert report.dynamic_count == 5
        assert report.static_count == 1

    def test_static_key_includes_kind(self):
        report = ViolationReport("svd")
        report.add(make_violation(loc=1, kind="a"))
        report.add(make_violation(loc=1, kind="b"))
        assert report.static_count == 2

    def test_per_million(self):
        report = ViolationReport("svd")
        report.add(make_violation())
        report.add(make_violation())
        assert report.dynamic_per_million(1_000_000) == pytest.approx(2.0)
        assert report.dynamic_per_million(500_000) == pytest.approx(4.0)
        assert report.dynamic_per_million(0) == 0.0

    def test_describe_groups_by_site(self):
        prog = Program(locs=[SourceLoc(3, 1, "x = y;")])
        prog.globals_layout["x"] = (0, 1)
        report = ViolationReport("svd", prog)
        report.add(make_violation(loc=0))
        report.add(make_violation(loc=0))
        text = report.describe()
        assert "x = y;" in text
        assert "x2" in text.replace("(x2", "x2")  # grouped count shown

    def test_iteration_and_len(self):
        report = ViolationReport("svd")
        report.add(make_violation())
        assert len(report) == 1
        assert list(report)[0].detector == "svd"


class TestPosterioriLog:
    def _entry(self, reader_loc=1, remote_loc=2, local_loc=3, addr=7):
        return LogEntry(tid=0, reader_seq=10, reader_loc=reader_loc,
                        address=addr, remote_tid=1, remote_seq=8,
                        remote_loc=remote_loc, local_seq=5,
                        local_loc=local_loc)

    def test_static_entries_dedup(self):
        log = PosterioriLog()
        log.add_entry(self._entry())
        log.add_entry(self._entry())
        log.add_entry(self._entry(reader_loc=9))
        assert len(log.entries) == 3
        assert len(log.static_entries) == 2

    def test_entries_for_address(self):
        log = PosterioriLog()
        log.add_entry(self._entry(addr=7))
        log.add_entry(self._entry(addr=8))
        assert len(log.entries_for_address(7)) == 1

    def test_suspicious_addresses_ranked(self):
        log = PosterioriLog()
        for _ in range(3):
            log.add_entry(self._entry(addr=5))
        log.add_entry(self._entry(addr=9))
        ranked = list(log.suspicious_addresses())
        assert ranked[0] == 5

    def test_describe_renders_symbols(self):
        prog = Program(locs=[SourceLoc(1, 1, "a"), SourceLoc(2, 1, "b"),
                             SourceLoc(3, 1, "c"), SourceLoc(4, 1, "d")])
        prog.globals_layout["used_fields"] = (7, 1)
        log = PosterioriLog(prog)
        log.add_entry(self._entry(reader_loc=0, remote_loc=1, local_loc=2))
        text = log.describe()
        assert "used_fields" in text
        assert "communication" in text

    def test_cu_records(self):
        log = PosterioriLog()
        log.add_cu_record(CuLogRecord(tid=0, uid=1, birth_seq=0, end_seq=9,
                                      read_blocks=(1, 2), write_blocks=(3,),
                                      reason="thread-end"))
        assert log.cu_records[0].read_blocks == (1, 2)
