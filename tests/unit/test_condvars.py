"""Condition-variable (wait/notify) tests: machine, language, detectors."""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.detectors import FrontierRaceDetector
from repro.harness import run_workload
from repro.lang import compile_source
from repro.machine import (Machine, MachineStatus, RandomScheduler,
                           RoundRobinScheduler)
from repro.workloads import bounded_buffer

HANDOFF = """
shared int data = 0;
shared int ready = 0;
lock m;
thread producer() {
    acquire(m);
    data = 42;
    ready = 1;
    notify(m);
    release(m);
}
thread consumer() {
    acquire(m);
    while (ready == 0) {
        wait(m);
    }
    output(data);
    release(m);
}
"""


class TestMachineSemantics:
    def run_handoff(self, seed=0, switch=0.5):
        prog = compile_source(HANDOFF)
        machine = Machine(prog, [("producer", ()), ("consumer", ())],
                          scheduler=RandomScheduler(seed=seed,
                                                    switch_prob=switch))
        machine.run(max_steps=100_000)
        return machine

    def test_handoff_delivers_value(self):
        for seed in range(6):
            machine = self.run_handoff(seed=seed)
            assert machine.status == MachineStatus.FINISHED, seed
            assert machine.output == [(1, 42)], seed

    def test_consumer_first_blocks_until_notify(self):
        # force the consumer to run first: it must wait, not spin-crash
        prog = compile_source(HANDOFF)
        machine = Machine(prog, [("producer", ()), ("consumer", ())],
                          scheduler=RoundRobinScheduler(quantum=3))
        machine.run(max_steps=100_000)
        assert machine.output == [(1, 42)]

    def test_wait_without_lock_crashes(self):
        src = "lock m; thread t() { wait(m); }"
        prog = compile_source(src)
        machine = Machine(prog, [("t", ())])
        machine.run()
        assert machine.crashed
        assert "does not hold" in machine.crashes[0].reason

    def test_notify_without_waiters_is_noop(self):
        src = "lock m; shared int x; thread t() { notify(m); x = 1; }"
        prog = compile_source(src)
        machine = Machine(prog, [("t", ())])
        machine.run()
        assert machine.status == MachineStatus.FINISHED
        assert machine.read_global("x") == 1

    def test_lost_wakeup_is_deadlock(self):
        """A waiter that sleeps after the only notify has passed
        deadlocks; the machine detects it."""
        src = ("lock m; shared int go;"
               "thread waiter() { acquire(m); wait(m); release(m); }")
        prog = compile_source(src)
        machine = Machine(prog, [("waiter", ())])
        machine.run(max_steps=10_000)
        assert machine.status == MachineStatus.DEADLOCK

    def test_notifyall_wakes_everyone(self):
        src = ("lock m; shared int woken = 0;"
               "thread waiter() { acquire(m); wait(m);"
               " woken = woken + 1; release(m); }"
               "thread boss() { int i = 0; while (i < 200) { i = i + 1; }"
               " acquire(m); notifyall(m); release(m); }")
        prog = compile_source(src)
        machine = Machine(prog, [("waiter", ()), ("waiter", ()), ("boss", ())],
                          scheduler=RoundRobinScheduler(quantum=10))
        machine.run(max_steps=100_000)
        assert machine.status == MachineStatus.FINISHED
        assert machine.read_global("woken") == 2

    def test_checkpoint_restores_wait_queues(self):
        prog = compile_source(HANDOFF)
        machine = Machine(prog, [("producer", ()), ("consumer", ())],
                          scheduler=RoundRobinScheduler(quantum=3))
        # step until the consumer is waiting
        for _ in range(60):
            machine.step()
        snap = machine.checkpoint()
        machine.run(max_steps=100_000)
        assert machine.output == [(1, 42)]
        machine.restore(snap)
        machine.run(max_steps=100_000)
        assert machine.output == [(1, 42)]


class TestDetectorsOnMonitors:
    def test_bounded_buffer_correct_and_race_free(self):
        for seed in range(3):
            result = run_workload(bounded_buffer(), seed=seed,
                                  switch_prob=0.5, max_steps=400_000)
            assert result.outcome.errors == 0, result.outcome.detail
            assert result.frd.dynamic_total == 0

    def test_handoff_race_free_under_frd(self):
        result_prog = compile_source(HANDOFF)
        from repro.trace import TraceRecorder
        recorder = TraceRecorder(result_prog, 2)
        machine = Machine(result_prog, [("producer", ()), ("consumer", ())],
                          scheduler=RandomScheduler(seed=2, switch_prob=0.5),
                          observers=[recorder])
        machine.run(max_steps=100_000)
        report = FrontierRaceDetector(result_prog).run(recorder.trace())
        assert report.dynamic_count == 0

    def test_cut_at_wait_reduces_monitor_false_positives(self):
        workload = bounded_buffer()
        totals = {}
        for cut in (False, True):
            count = 0
            for seed in range(3):
                svd = OnlineSVD(workload.program,
                                SvdConfig(cut_at_wait=cut))
                machine = workload.make_machine(
                    RandomScheduler(seed=seed, switch_prob=0.5),
                    observers=[svd])
                machine.run(max_steps=400_000)
                count += svd.report.dynamic_count
            totals[cut] = count
        assert totals[True] < totals[False]

    def test_wait_cut_records_logged(self):
        workload = bounded_buffer()
        svd = OnlineSVD(workload.program, SvdConfig(cut_at_wait=True))
        machine = workload.make_machine(
            RandomScheduler(seed=0, switch_prob=0.5), observers=[svd])
        machine.run(max_steps=400_000)
        reasons = {r.reason for r in svd.log.cu_records}
        assert "wait" in reasons
