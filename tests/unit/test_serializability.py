"""Serializability and strict-2PL checker tests (paper §3.3)."""

import pytest

from repro.pdg import build_dpdg, reference_cu_partition
from repro.serializability import (
    cu_conflict_graph, is_serializable, strict_2pl_violations,
)
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


def analyse(source, threads, **kwargs):
    machine, trace = run_program(source, threads, record=True, **kwargs)
    pdg = build_dpdg(trace)
    parts = {tid: reference_cu_partition(pdg, tid)
             for tid in range(len(threads))}
    return machine, trace, parts


class TestPreciseSerializability:
    def test_lost_update_not_serializable(self):
        # pick a seed where the lost update actually happens
        for seed in range(8):
            machine, trace, parts = analyse(
                COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
                seed=seed, switch_prob=0.5)
            if machine.read_global("counter") < 60:
                result = is_serializable(trace, parts)
                assert not result.serializable
                assert result.cycle  # witness produced
                return
        pytest.fail("no seed manifested the lost update")

    def test_locked_counter_serializable(self):
        _m, trace, parts = analyse(
            COUNTER_LOCKED, [("worker", (20,)), ("worker", (20,))])
        assert is_serializable(trace, parts).serializable

    def test_single_thread_always_serializable(self):
        src = "shared int x; thread t() { x = 1; int y = x; x = y + 1; }"
        _m, trace, parts = analyse(src, [("t", ())])
        assert is_serializable(trace, parts).serializable

    def test_disjoint_data_serializable(self):
        src = ("shared int a; shared int b;"
               "thread ta(int n) { int i = 0; while (i < n) {"
               " a = a + 1; i = i + 1; } }"
               "thread tb(int n) { int i = 0; while (i < n) {"
               " b = b + 1; i = i + 1; } }")
        _m, trace, parts = analyse(src, [("ta", (10,)), ("tb", (10,))])
        assert is_serializable(trace, parts).serializable

    def test_cycle_witness_is_a_cycle(self):
        for seed in range(8):
            machine, trace, parts = analyse(
                COUNTER_RACE, [("worker", (30,)), ("worker", (30,))],
                seed=seed, switch_prob=0.5)
            result = is_serializable(trace, parts)
            if not result.serializable:
                _nodes, edges = cu_conflict_graph(trace, parts)
                cycle = result.cycle
                for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                    assert (u, v) in edges
                return
        pytest.fail("no non-serializable execution found")


class TestConflictGraph:
    def test_program_order_edges_present(self):
        src = "shared int x; thread t() { x = 1; int y = x; }"
        _m, trace, parts = analyse(src, [("t", ()), ("t", ())])
        _nodes, edges = cu_conflict_graph(trace, parts)
        # same-thread CUs are chained in start order
        part = parts[0]
        ordered = sorted(part.cu_ids, key=lambda c: part.cu_span(c)[0])
        for earlier, later in zip(ordered, ordered[1:]):
            assert ((0, earlier), (0, later)) in edges

    def test_nodes_cover_all_cus(self):
        _m, trace, parts = analyse(
            COUNTER_RACE, [("worker", (5,)), ("worker", (5,))])
        nodes, _edges = cu_conflict_graph(trace, parts)
        for tid, part in parts.items():
            for cu_id in part.cu_ids:
                assert (tid, cu_id) in nodes


class TestStrict2PL:
    def test_violations_point_at_conflicting_events(self):
        _m, trace, parts = analyse(
            COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
            switch_prob=0.5)
        violations = strict_2pl_violations(trace, parts)
        assert violations
        for v in violations:
            assert v.intruder.tid != v.victim_access.tid
            assert v.intruder.addr == v.victim_access.addr == v.address
            assert v.victim_access.seq < v.intruder.seq
            # intruder lands before the victim CU finished
            tid, cu_id = v.victim_cu
            assert parts[tid].cu_span(cu_id)[1] > v.intruder.seq

    def test_2pl_clean_implies_serializable(self):
        """Strict 2PL is sufficient for serializability (paper §3.3)."""
        for seed in range(6):
            _m, trace, parts = analyse(
                COUNTER_RACE, [("worker", (10,)), ("worker", (10,))],
                seed=seed, switch_prob=0.5)
            if not strict_2pl_violations(trace, parts):
                assert is_serializable(trace, parts).serializable

    def test_non_serializable_implies_2pl_violation(self):
        """Contrapositive on real traces."""
        for seed in range(8):
            _m, trace, parts = analyse(
                COUNTER_RACE, [("worker", (20,)), ("worker", (20,))],
                seed=seed, switch_prob=0.5)
            if not is_serializable(trace, parts).serializable:
                assert strict_2pl_violations(trace, parts)

    def test_empty_trace(self):
        src = "thread t() { }"
        _m, trace, parts = analyse(src, [("t", ())])
        assert is_serializable(trace, parts).serializable
        assert strict_2pl_violations(trace, parts) == []
