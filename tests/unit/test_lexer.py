"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        tokens = tokenize("foo")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "foo"

    def test_identifier_with_underscore_and_digits(self):
        assert values("buf_out2") == ["buf_out2"]

    def test_leading_underscore_identifier(self):
        tokens = tokenize("_tmp")
        assert tokens[0].kind == "ident"

    def test_number(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "number"
        assert tokens[0].value == "42"

    def test_zero(self):
        assert tokenize("0")[0].value == "0"

    def test_keywords_recognised(self):
        for kw in ["shared", "local", "int", "lock", "thread", "if", "else",
                   "while", "for", "acquire", "release", "assert", "output",
                   "memcpy"]:
            assert tokenize(kw)[0].kind == "keyword", kw

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind == "ident"
        assert tokenize("sharedx")[0].kind == "ident"


class TestOperators:
    @pytest.mark.parametrize("op", ["==", "!=", "<=", ">=", "&&", "||"])
    def test_multichar_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].kind == "op"
        assert tokens[0].value == op

    @pytest.mark.parametrize("op", list("+-*/%<>=!&|^(){}[],;"))
    def test_single_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].kind == "op"
        assert tokens[0].value == op

    def test_maximal_munch_le(self):
        # "<=" must not lex as "<", "="
        assert values("a<=b") == ["a", "<=", "b"]

    def test_adjacent_operators(self):
        assert values("a==-1") == ["a", "==", "-", "1"]

    def test_and_and_vs_and(self):
        assert values("a&&b") == ["a", "&&", "b"]
        assert values("a&b") == ["a", "&", "b"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a // trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert values("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert values("a\t b\r\n c") == ["a", "b", "c"]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_line_tracking_through_comment(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].line == 2


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a $ b")
        assert exc.value.line == 1

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
        assert exc.value.column == 3
