"""Unit tests for the pre-decoded engine and kind-masked emission."""

import pytest

from repro.lang import compile_source
from repro.machine import (
    EV_ALU, EV_BRANCH, EV_LOAD, EV_STORE, Machine, MachineObserver,
    MachineStatus, RandomScheduler, RoundRobinScheduler, SerialScheduler,
    compile_table,
)
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


class _Capture(MachineObserver):
    def __init__(self, interests=None):
        if interests is not None:
            self.interests = frozenset(interests)
        self.events = []

    def on_event(self, event):
        self.events.append((event.kind, event.seq, event.tid, event.pc,
                            event.addr, event.value))


def _machine(source, threads, **kwargs):
    program = compile_source(source)
    kwargs.setdefault("scheduler", RandomScheduler(seed=2, switch_prob=0.3))
    return Machine(program, threads, **kwargs)


class TestPredecodedEngine:
    def test_default_is_predecoded(self):
        m = _machine("shared int x; thread t() { x = 1; }", [("t", ())])
        assert m.predecoded
        assert len(m._table) == len(m.program.code)

    def test_table_covers_every_pc(self):
        m = _machine(COUNTER_LOCKED, [("worker", (3,))], predecoded=False)
        table = compile_table(m)
        assert len(table) == len(m.program.code)
        assert all(callable(fn) for fn in table)

    def test_runs_to_completion(self):
        m = _machine(COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        assert m.run(max_steps=100_000) == MachineStatus.FINISHED
        assert m.read_global("counter") == 20

    def test_memory_fault_register_address(self):
        src = ("shared int a[4]; shared int n = 99;"
               "thread t() { a[n] = 1; }")
        m = _machine(src, [("t", ())])
        m.run()
        assert m.crashed
        assert "memory fault: address" in m.crashes[0].reason

    def test_assert_failure_crashes(self):
        src = "shared int x; thread t() { assert(x == 1); }"
        m = _machine(src, [("t", ())])
        m.run()
        assert m.crashed
        assert m.crashes[0].reason.startswith("assertion failed")


class TestKindMaskedEmission:
    def test_seq_advances_with_no_observers(self):
        """Events for unwanted kinds are never constructed, but the
        global sequence number is identical to an observed run."""
        observed = _machine(COUNTER_RACE, [("worker", (5,)), ("worker", (5,))],
                            observers=[_Capture()])
        observed.run(max_steps=100_000)
        silent = _machine(COUNTER_RACE, [("worker", (5,)), ("worker", (5,))])
        silent.run(max_steps=100_000)
        assert silent.seq == observed.seq
        assert silent.steps == observed.steps

    def test_mask_filters_delivery(self):
        masked = _Capture(interests=[EV_LOAD, EV_STORE])
        full = _Capture()
        m = _machine(COUNTER_RACE, [("worker", (5,)), ("worker", (5,))],
                     observers=[masked, full])
        m.run(max_steps=100_000)
        assert masked.events  # it got something
        assert all(kind in (EV_LOAD, EV_STORE)
                   for kind, *_ in masked.events)
        # the masked observer saw exactly the full observer's subset
        expected = [e for e in full.events if e[0] in (EV_LOAD, EV_STORE)]
        assert masked.events == expected

    def test_unwanted_kind_not_constructed_but_seq_reserved(self):
        """An ALU-only observer still sees the same seq numbers an
        all-kinds observer would have attributed to ALU events."""
        alu_only = _Capture(interests=[EV_ALU])
        m1 = _machine(COUNTER_RACE, [("worker", (3,))],
                      observers=[alu_only],
                      scheduler=SerialScheduler())
        m1.run(max_steps=100_000)
        full = _Capture()
        m2 = _machine(COUNTER_RACE, [("worker", (3,))], observers=[full],
                      scheduler=SerialScheduler())
        m2.run(max_steps=100_000)
        assert alu_only.events == [e for e in full.events
                                   if e[0] == EV_ALU]

    def test_add_observer_mid_run_rebuilds_mask(self):
        early = _Capture(interests=[EV_STORE])
        m = _machine(COUNTER_RACE, [("worker", (8,))],
                     observers=[early], scheduler=SerialScheduler())
        for _ in range(10):
            m.step()
        late = _Capture()
        m.add_observer(late)
        m.run(max_steps=100_000)
        assert late.events  # full stream from attach point onwards
        kinds_seen = {kind for kind, *_ in late.events}
        assert kinds_seen - {EV_STORE}  # not masked to the old set

    def test_observers_swap_mid_run(self):
        """BER replaces the observer list wholesale on rollback; the
        in-place emission-table rebuild must redirect the pre-decoded
        closures."""
        first = _Capture()
        m = _machine(COUNTER_RACE, [("worker", (8,))],
                     observers=[first], scheduler=SerialScheduler())
        for _ in range(10):
            m.step()
        second = _Capture()
        m.observers = [second]
        m.run(max_steps=100_000)
        n_first = len(first.events)
        assert n_first == 10
        assert second.events
        assert second.events[0][1] == 10  # seq continues, no overlap

    def test_legacy_engine_masks_identically(self):
        masked_legacy = _Capture(interests=[EV_BRANCH])
        m1 = _machine(COUNTER_RACE, [("worker", (4,))],
                      observers=[masked_legacy],
                      scheduler=SerialScheduler(), predecoded=False)
        m1.run(max_steps=100_000)
        masked_pre = _Capture(interests=[EV_BRANCH])
        m2 = _machine(COUNTER_RACE, [("worker", (4,))],
                      observers=[masked_pre],
                      scheduler=SerialScheduler(), predecoded=True)
        m2.run(max_steps=100_000)
        assert masked_legacy.events == masked_pre.events


class TestIncrementalRunnableSet:
    def test_matches_scan_through_blocking_run(self):
        m = _machine(COUNTER_LOCKED, [("worker", (6,)), ("worker", (6,)),
                                      ("worker", (6,))],
                     scheduler=RoundRobinScheduler(quantum=3))
        while m.status == MachineStatus.RUNNING:
            assert m._runnable_ids == m._runnable()
            m.step()
        assert m._runnable_ids == []

    def test_restore_rebuilds_runnable_set(self):
        m = _machine(COUNTER_LOCKED, [("worker", (10,)), ("worker", (10,))])
        snapshot = m.checkpoint()
        m.run(max_steps=100_000)
        assert m._runnable_ids == []
        m.restore(snapshot)
        assert m._runnable_ids == m._runnable()
        assert m.run(max_steps=100_000) == MachineStatus.FINISHED
        assert m.read_global("counter") == 20
