"""Lockset (Eraser) and Atomizer baseline tests (paper §8 related work)."""

import pytest

from repro.detectors import AtomizerDetector, LocksetDetector
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE, run_program


def lockset_on(source, threads, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    return trace, LocksetDetector(trace.program).run(trace)


def atomizer_on(source, threads, **kwargs):
    _m, trace = run_program(source, threads, record=True, **kwargs)
    return trace, AtomizerDetector(trace.program).run(trace)


class TestLockset:
    def test_unlocked_counter_reported(self):
        _t, report = lockset_on(COUNTER_RACE,
                                [("worker", (10,)), ("worker", (10,))],
                                switch_prob=0.5)
        assert report.dynamic_count > 0

    def test_locked_counter_clean(self):
        _t, report = lockset_on(COUNTER_LOCKED,
                                [("worker", (10,)), ("worker", (10,))],
                                switch_prob=0.5)
        assert report.dynamic_count == 0

    def test_initialisation_phase_not_reported(self):
        """Exclusive-owner writes before sharing are fine (Eraser's
        VIRGIN/EXCLUSIVE states)."""
        src = ("shared int cfg; lock m;"
               "thread init_then_share() { cfg = 10; cfg = 20;"
               " acquire(m); cfg = 30; release(m); }"
               "thread reader() { acquire(m); int v = cfg; release(m);"
               " output(v); }")
        _t, report = lockset_on(src, [("init_then_share", ()), ("reader", ())],
                                seed=4, switch_prob=0.1)
        assert report.dynamic_count == 0

    def test_read_shared_no_write_not_reported(self):
        src = ("shared int x = 1; shared int r0; shared int r1;"
               "thread t(int tid) {"
               " if (tid == 0) { r0 = x; } else { r1 = x; } }")
        _t, report = lockset_on(src, [("t", (0,)), ("t", (1,))])
        assert report.dynamic_count == 0

    def test_inconsistent_locks_reported(self):
        """Guarded by different locks in different threads = empty
        candidate set."""
        src = ("shared int x; lock a; lock b;"
               "thread ta(int n) { int i = 0; while (i < n) {"
               " acquire(a); x = x + 1; release(a); i = i + 1; } }"
               "thread tb(int n) { int i = 0; while (i < n) {"
               " acquire(b); x = x + 1; release(b); i = i + 1; } }")
        _t, report = lockset_on(src, [("ta", (10,)), ("tb", (10,))],
                                switch_prob=0.5)
        assert report.dynamic_count > 0

    def test_one_report_per_address(self):
        _t, report = lockset_on(COUNTER_RACE,
                                [("worker", (20,)), ("worker", (20,))],
                                switch_prob=0.5)
        addresses = [v.address for v in report]
        assert len(addresses) == len(set(addresses))


class TestAtomizer:
    def test_locked_counter_atomic(self):
        _t, report = atomizer_on(COUNTER_LOCKED,
                                 [("worker", (10,)), ("worker", (10,))],
                                 switch_prob=0.5)
        assert report.dynamic_count == 0

    def test_racy_access_after_commit_reported(self):
        """A critical section that touches an unprotected (racy) variable
        twice, around a nested release, is not reducible."""
        src = ("shared int racy; shared int safe; lock m; lock inner;"
               "thread t(int n) { int i = 0; while (i < n) {"
               "  acquire(m);"
               "  int a = racy;"            # non-mover (racy) -> commit
               "  acquire(inner);"          # right mover after commit!
               "  safe = safe + a;"
               "  release(inner);"
               "  release(m);"
               "  racy = racy + 1;"         # keeps `racy` lockset-empty
               "  i = i + 1; } }")
        _t, report = atomizer_on(src, [("t", (10,)), ("t", (10,))],
                                 switch_prob=0.5)
        assert report.dynamic_count > 0

    def test_single_racy_access_per_block_ok(self):
        """One non-mover per block fits R* N L* and is never reported.
        (Note: a single racy *store*; a racy read-modify-write is two
        non-movers and rightly reportable.)"""
        src = ("shared int racy; lock m;"
               "thread t(int n) { int i = 0; while (i < n) {"
               "  acquire(m); racy = i; release(m);"
               "  i = i + 1; } }"
               "thread free(int n) { int i = 0; while (i < n) {"
               "  racy = racy + 1; i = i + 1; } }")
        _t, report = atomizer_on(src, [("t", (10,)), ("free", (10,))],
                                 switch_prob=0.5)
        locked_reports = [v for v in report if v.tid == 0]
        assert not locked_reports

    def test_two_racy_accesses_in_block_reported(self):
        src = ("shared int racy; lock m;"
               "thread t(int n) { int i = 0; while (i < n) {"
               "  acquire(m); int a = racy; racy = a + 1; release(m);"
               "  i = i + 1; } }"
               "thread free(int n) { int i = 0; while (i < n) {"
               "  racy = racy + 1; i = i + 1; } }")
        _t, report = atomizer_on(src, [("t", (10,)), ("free", (10,))],
                                 switch_prob=0.5)
        assert report.dynamic_count > 0
