"""Workload model tests: compile, run, ground truth, validators."""

import pytest

from repro.machine import RandomScheduler, SerialScheduler
from repro.workloads import (
    WORKLOADS, apache_log, mysql_prepared, mysql_tablelock, pgsql_oltp,
    queue_region, stringbuffer,
)


def run(workload, seed=3, switch=0.4, max_steps=400_000):
    machine = workload.make_machine(
        RandomScheduler(seed=seed, switch_prob=switch))
    machine.run(max_steps=max_steps)
    return machine


class TestRegistry:
    def test_all_factories_compile(self):
        for name, factory in WORKLOADS.items():
            workload = factory()
            assert workload.program.code, name
            workload.program.validate()

    def test_buggy_workloads_have_bug_locs(self):
        for factory in (apache_log, mysql_prepared, stringbuffer):
            workload = factory()
            assert workload.buggy
            assert workload.bug_locs()

    def test_clean_workloads_have_no_bug_locs(self):
        for workload in (apache_log(fixed=True), mysql_tablelock(),
                         pgsql_oltp(), queue_region()):
            assert not workload.buggy
            assert workload.bug_locs() == set()


class TestApache:
    def test_serial_run_is_clean_even_when_buggy(self):
        workload = apache_log()
        machine = workload.make_machine(SerialScheduler())
        machine.run()
        assert workload.validate(machine).errors == 0

    def test_concurrent_buggy_run_corrupts_log(self):
        workload = apache_log()
        corrupted = any(
            workload.validate(run(workload, seed=s, switch=0.5)).errors > 0
            for s in range(4))
        assert corrupted

    def test_fixed_run_always_clean(self):
        workload = apache_log(fixed=True)
        for seed in range(3):
            machine = run(workload, seed=seed, switch=0.5)
            assert workload.validate(machine).errors == 0, seed

    def test_validator_counts_records(self):
        workload = apache_log(fixed=True, writers=2, requests=5)
        machine = run(workload)
        outcome = workload.validate(machine)
        assert "10" in outcome.detail  # 2 writers x 5 requests intact

    def test_requires_two_writers(self):
        with pytest.raises(ValueError):
            apache_log(writers=1)

    def test_bufsize_validation(self):
        with pytest.raises(ValueError):
            apache_log(bufsize=4)


class TestMysql:
    def test_tablelock_predicate_never_fires(self):
        workload = mysql_tablelock()
        for seed in range(3):
            machine = run(workload, seed=seed, switch=0.6)
            assert workload.validate(machine).errors == 0

    def test_prepared_buggy_crashes_some_seed(self):
        workload = mysql_prepared()
        crashed = any(run(workload, seed=s, switch=0.5).crashed
                      for s in range(5))
        assert crashed

    def test_prepared_crash_is_nondeterministic(self):
        """The paper: MySQL crashes *non-deterministically* -- some seeds
        survive."""
        workload = mysql_prepared()
        results = {run(workload, seed=s, switch=switch).crashed
                   for s in range(4)
                   for switch in (0.02, 0.5)}
        assert results == {True, False}

    def test_prepared_fixed_never_crashes(self):
        workload = mysql_prepared(fixed=True)
        for seed in range(4):
            machine = run(workload, seed=seed, switch=0.5)
            assert not machine.crashed, seed

    def test_prepared_serial_never_crashes(self):
        workload = mysql_prepared()
        machine = workload.make_machine(SerialScheduler())
        machine.run()
        assert not machine.crashed


class TestPgsql:
    def test_balances_always_consistent(self):
        workload = pgsql_oltp()
        for seed in range(3):
            machine = run(workload, seed=seed, switch=0.5)
            outcome = workload.validate(machine)
            assert outcome.errors == 0, (seed, outcome.detail)

    def test_scales_with_parameters(self):
        small = pgsql_oltp(terminals=2, txns=5)
        large = pgsql_oltp(terminals=4, txns=10)
        m_small = run(small)
        m_large = run(large)
        assert m_large.steps > m_small.steps

    def test_warehouse_validation(self):
        with pytest.raises(ValueError):
            pgsql_oltp(warehouses=0)


class TestStringBuffer:
    def test_buggy_tears_some_seed(self):
        workload = stringbuffer()
        torn = any(run(workload, seed=s, switch=0.6).crashed
                   for s in range(6))
        assert torn

    def test_fixed_never_tears(self):
        workload = stringbuffer(fixed=True)
        for seed in range(4):
            assert not run(workload, seed=seed, switch=0.6).crashed

    def test_serial_never_tears(self):
        workload = stringbuffer()
        machine = workload.make_machine(SerialScheduler())
        machine.run()
        assert not machine.crashed


class TestQueueRegion:
    def test_locked_queue_loses_nothing(self):
        workload = queue_region(fixed=True)
        for seed in range(3):
            machine = run(workload, seed=seed, switch=0.6)
            assert workload.validate(machine).errors == 0

    def test_unlocked_queue_loses_items(self):
        workload = queue_region(fixed=False)
        lost = any(
            workload.validate(run(workload, seed=s, switch=0.6)).errors > 0
            for s in range(4))
        assert lost
