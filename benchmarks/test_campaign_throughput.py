"""Sharded-campaign throughput and coordinator memory flatness.

The sharding tentpole claims the distribution layer is close to free
and the streaming aggregation keeps the coordinator O(1).  This bench
pins both claims in ``benchmarks/out/BENCH_campaign.json``:

* **sharded.events_per_sec** (asserted) -- end-to-end throughput of
  the full multi-shard path: ``plan`` (obs off) -> ``drive`` (3 local
  shard subprocesses) -> ``merge``.  The matrix is sized so the run
  retires >2M interpreted events, large enough that the fixed
  subprocess fan-out cost (3 interpreter startups on a single-core
  box) cannot dominate the measurement.  Recorded ~316k ev/s on the
  reference box against a ~420k ev/s single-pool baseline; the pinned
  floor (``bench_gate.FLOORS["BENCH_campaign.json"]``, 250k) catches a
  real regression in either the engine or the shard plumbing.
* **rss.flatness** (asserted) -- the O(1)-aggregation memory gate: one
  coordinator subprocess runs a small campaign, another runs the same
  campaign with 10x the tasks, and each reports its own peak RSS in
  its final heartbeat record.  Streaming aggregation means the peak is
  set by the widest single task, not the task count, so
  small_peak / large_peak stays near 1.0 (recorded ~0.96); a
  result-retaining coordinator drags the ratio well below the 0.90
  floor.  Subprocesses keep the measurement honest -- each campaign's
  high-water mark is its own, not this process's.

A ``single_pool`` reference section records the same matrix through
in-process ``run_campaign`` so the artefact always shows what the
sharding overhead actually cost.  Both floors are re-checked in CI via
``repro bench --check``.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.harness import shard as shardlib
from repro.harness.bench_gate import FLOORS
from repro.harness.campaign import (CampaignSpec, ConfigSpec,
                                    WorkloadSpec, run_campaign)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

SHARDS = 3
SEEDS = 48
MAX_STEPS = 60_000
#: sharded-throughput rounds (best wins; early exit above the margin)
ROUNDS = 2
EPS_FLOOR = FLOORS["BENCH_campaign.json"]["sharded.events_per_sec"]
RSS_FLOOR = FLOORS["BENCH_campaign.json"]["rss.flatness"]

#: the memory-flatness campaigns: identical per-task shape, 10x tasks
RSS_SMALL_SEEDS = 25
RSS_LARGE_SEEDS = 250
RSS_MAX_STEPS = 2_000


def _throughput_spec():
    """The timed matrix: obs off (throughput mode), ~2.3M events."""
    return CampaignSpec(
        workloads=[WorkloadSpec(name="apache"),
                   WorkloadSpec(name="stringbuffer")],
        configs=[ConfigSpec(name="bench", max_steps=MAX_STEPS)],
        seeds=SEEDS, obs=False)


def _run_sharded(plan_dir):
    """One timed plan/drive/merge pass; returns (events, seconds,
    merged report)."""
    plan = shardlib.plan_shards(_throughput_spec(), SHARDS, plan_dir)
    assert plan.total_tasks == 2 * SEEDS
    started = time.perf_counter()
    codes = shardlib.drive_shards(plan_dir, workers=1)
    merge = shardlib.merge_shards(plan_dir)
    seconds = time.perf_counter() - started
    # violations are the expected outcome (these are buggy workloads);
    # anything else means a shard died
    assert all(code in (0, 1) for code in codes.values()), codes
    assert merge.missing == 0, (merge.missing, merge.missing_sample)
    aggregate = merge.report.aggregate
    assert aggregate.completed == plan.total_tasks
    assert aggregate.failed_count == 0
    return aggregate.events, seconds, merge


def _run_single_pool():
    """The in-process baseline over the identical matrix."""
    started = time.perf_counter()
    report = run_campaign(_throughput_spec(), keep_results=False)
    seconds = time.perf_counter() - started
    aggregate = report.aggregate
    assert aggregate.failed_count == 0
    return aggregate.events, seconds


def _coordinator_peak_rss(tmp_path, tag, seeds):
    """Run one campaign as its own subprocess and return the
    coordinator's peak RSS from its final heartbeat record."""
    heartbeat = os.path.join(str(tmp_path), f"hb_{tag}.jsonl")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign",
         "--workloads", "stringbuffer", "--seeds", str(seeds),
         "--max-steps", str(RSS_MAX_STEPS), "--quiet",
         "--heartbeat-out", heartbeat],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    assert proc.returncode in (0, 1), proc.stderr
    with open(heartbeat) as fh:
        final = json.loads(fh.readlines()[-1])
    assert final.get("final"), final
    assert final["completed"] == seeds, final
    rss = int(final["rss_peak_bytes"])
    assert rss > 0, final
    return rss


def test_sharded_campaign_throughput_and_rss(tmp_path, emit_result):
    best_events, best_seconds, merge = None, None, None
    rounds = 0
    while rounds < ROUNDS:
        events, seconds, merge = _run_sharded(
            str(tmp_path / f"plan-{rounds}"))
        rounds += 1
        if (best_seconds is None
                or events / seconds > best_events / best_seconds):
            best_events, best_seconds = events, seconds
        if best_events / best_seconds >= EPS_FLOOR * 1.15:
            break
    sharded_eps = best_events / best_seconds

    single_events, single_seconds = _run_single_pool()
    # the task set and seeds are globally derived, so both paths must
    # have interpreted the identical stream
    assert single_events == best_events, (single_events, best_events)

    small_rss = _coordinator_peak_rss(tmp_path, "small", RSS_SMALL_SEEDS)
    large_rss = _coordinator_peak_rss(tmp_path, "large", RSS_LARGE_SEEDS)
    flatness = small_rss / large_rss

    record = {
        "shards": SHARDS,
        "tasks": 2 * SEEDS,
        "max_steps": MAX_STEPS,
        "rounds": rounds,
        "sharded": {
            "events": best_events,
            "seconds": round(best_seconds, 6),
            "events_per_sec": round(sharded_eps),
            "merged_heartbeat_events_per_sec":
                merge.heartbeat["events_per_sec"] if merge.heartbeat
                else None,
        },
        "single_pool": {
            "events": single_events,
            "seconds": round(single_seconds, 6),
            "events_per_sec": round(single_events / single_seconds),
        },
        "rss": {
            "small_tasks": RSS_SMALL_SEEDS,
            "large_tasks": RSS_LARGE_SEEDS,
            "small_peak_bytes": small_rss,
            "large_peak_bytes": large_rss,
            "flatness": round(flatness, 4),
        },
        "events_per_sec_floor": EPS_FLOOR,
        "rss_flatness_floor": RSS_FLOOR,
    }
    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_campaign.json"), record)

    emit_result("campaign_throughput", json.dumps(record, indent=2))
    # the pinned claims (also enforced on the artefact in CI via
    # ``repro bench --check``): the shard fan-out stays cheap, and the
    # coordinator's memory does not scale with the task count
    assert sharded_eps >= EPS_FLOOR, record
    assert flatness >= RSS_FLOOR, record
