"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures and writes
its rendered output to ``benchmarks/out/<name>.txt`` (also printed when
pytest runs with ``-s``), so EXPERIMENTS.md can be refreshed from the
artefacts.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)


@pytest.fixture
def emit_result():
    return emit
