"""Ablation: register-promoted locals vs memory-resident locals.

The paper's SVD watches compiled SPARC binaries, where an optimising
compiler keeps most scalar locals in registers; our default codegen
keeps them in the frame (like Figure 2's memory-resident ``len``).  This
ablation compiles the same sources both ways and measures the effect on
the detector: dependence chains that flowed through local memory blocks
now flow through register CU-sets only, shrinking the instruction stream
~40% and the tracked state, while detection of the real bug must be
preserved (CU inference was designed to work on either form -- Figure 1
shows a register chain, Figure 2 a memory chain).
"""

import pytest

from repro.core import OnlineSVD
from repro.harness import render_table
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from tests.conftest import BENIGN_RACE, COUNTER_LOCKED, COUNTER_RACE

CASES = [
    ("race", COUNTER_RACE, True),
    ("locked", COUNTER_LOCKED, False),
    ("benign", BENIGN_RACE, False),
]


def measure(promote, seeds=range(4)):
    results = {}
    for name, source, _buggy in CASES:
        program = compile_source(source, promote_locals=promote)
        insts = reports = state = 0
        thread_names = list(program.threads)
        threads = [(thread_names[i % len(thread_names)], (25,))
                   for i in range(2)]
        for seed in seeds:
            svd = OnlineSVD(program)
            machine = Machine(program, threads,
                              scheduler=RandomScheduler(seed=seed,
                                                        switch_prob=0.5),
                              observers=[svd])
            machine.run(max_steps=200_000)
            insts += svd.instructions
            reports += svd.report.dynamic_count
            state += sum(d.peak_tracked_blocks
                         for d in svd.threads.values())
        results[name] = (insts, reports, state)
    return results


def test_register_promotion_ablation(benchmark, emit_result):
    memory = benchmark.pedantic(measure, args=(False,),
                                rounds=1, iterations=1)
    promoted = measure(True)

    rows = []
    for name, _src, _buggy in CASES:
        rows.append((name,
                     memory[name][0], promoted[name][0],
                     memory[name][1], promoted[name][1],
                     memory[name][2], promoted[name][2]))
    text = render_table(
        ["program", "insts (mem)", "insts (reg)", "reports (mem)",
         "reports (reg)", "state (mem)", "state (reg)"],
        rows, title="Ablation: register promotion of scalar locals")
    emit_result("ablation_register_promotion", text)

    for name, _src, buggy in CASES:
        # promotion shrinks the instruction stream and tracked state
        assert promoted[name][0] < memory[name][0], name
        assert promoted[name][2] <= memory[name][2], name
        # and preserves the detection verdict
        if buggy:
            assert promoted[name][1] > 0, name
        else:
            assert promoted[name][1] == 0, name
