"""Ablation: memory block size / false sharing (paper §4.2, §6.2).

The paper uses word-size blocks "to avoid false sharing".  Larger
fixed-size blocks alias unrelated variables into one tracking unit:
independent per-thread counters that share a block look like conflicting
accesses, and false positives appear on a perfectly clean program.
"""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.harness import render_table
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.workloads import pgsql_oltp

#: two threads with fully disjoint shared counters, adjacent in memory
SOURCE = """
shared int counters[8];

thread t(int tid, int n) {
    int i = 0;
    while (i < n) {
        counters[tid] = counters[tid] + 1;
        i = i + 1;
    }
}
"""


def disjoint_counters_fps(block_size, seeds=range(4)):
    program = compile_source(SOURCE)
    total = 0
    for seed in seeds:
        svd = OnlineSVD(program, SvdConfig(block_size=block_size))
        machine = Machine(program, [("t", (0, 25)), ("t", (1, 25))],
                          scheduler=RandomScheduler(seed=seed,
                                                    switch_prob=0.6),
                          observers=[svd])
        machine.run()
        total += svd.report.dynamic_count
    return total


def pgsql_fps(block_size, seeds=range(2)):
    total = 0
    for seed in seeds:
        workload = pgsql_oltp()
        svd = OnlineSVD(workload.program, SvdConfig(block_size=block_size))
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5), observers=[svd])
        machine.run()
        total += svd.report.dynamic_count
    return total


def test_block_size_ablation(benchmark, emit_result):
    sizes = [1, 4, 16]
    disjoint = [benchmark.pedantic(disjoint_counters_fps, args=(1,),
                                   rounds=1, iterations=1)]
    disjoint += [disjoint_counters_fps(s) for s in sizes[1:]]
    oltp = [pgsql_fps(s) for s in sizes]

    text = render_table(
        ["block words", "disjoint-counters FPs", "pgsql FPs"],
        list(zip(sizes, disjoint, oltp)),
        title="Ablation: block size / false sharing "
              "(paper uses word-size blocks)")
    emit_result("ablation_block_size", text)

    # word-size blocks: disjoint counters never conflict
    assert disjoint[0] == 0
    # once the two counters share a block, false conflicts appear
    assert disjoint[1] > 0 or disjoint[2] > 0
    # false sharing can only add reports on the OLTP workload too
    assert oltp[-1] >= oltp[0]
