"""Interpreter throughput: pre-decoded vs legacy step engines.

The pre-decode tentpole claims that compiling ``program.code`` into
per-pc specialized step closures -- plus kind-masked, allocation-free
event emission -- makes the interpreter substantially faster without
changing a single observable byte.  This benchmark pins the claim:
steps/sec for both engines under three observer loads,

* **0 observers** -- pure interpretation; the kind mask suppresses every
  Event allocation.  Asserted: pre-decoded >= 2x legacy.
* **trace only**  -- one full-stream recorder attached (the single-sink
  fan-out bypass path).
* **full SVD**    -- the online detector attached; detector work bounds
  the achievable speedup.  Asserted: pre-decoded >= 1.3x legacy.

Rounds are interleaved (best-of-5, like BENCH_obs) so CPU-frequency and
cache drift hit every configuration equally.  Machine construction
(which includes the pre-decode compile) happens outside the timer: the
table is built once per Machine and amortized over the whole run, and
the run itself is what campaigns and the fuzzer repeat millions of
times.  Results land in ``benchmarks/out/BENCH_interp.json``.
"""

import json
import os
import time

import pytest

from repro.core.online import OnlineSVD
from repro.machine.scheduler import RandomScheduler
from repro.trace.trace import TraceRecorder
from repro.workloads import apache_log

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

ROUNDS = 5
MAX_STEPS = 300_000
#: acceptance floors (ISSUE 5): pre-decoded over legacy steps/sec
MIN_SPEEDUP_BARE = 2.0
MIN_SPEEDUP_SVD = 1.3


def _workload():
    return apache_log(writers=3, requests=40)


def _observers_none(_workload_obj):
    return []


def _observers_trace(workload):
    return [TraceRecorder(workload.program, len(workload.threads))]


def _observers_svd(workload):
    return [OnlineSVD(workload.program)]


CONFIGS = [
    ("0-observers", _observers_none),
    ("trace-only", _observers_trace),
    ("full-svd", _observers_svd),
]


def _timed_run(workload, predecoded, make_observers):
    """Build the machine outside the timer, time only the run."""
    machine = workload.make_machine(
        RandomScheduler(seed=11, switch_prob=0.3),
        observers=make_observers(workload),
        predecoded=predecoded)
    started = time.perf_counter()
    machine.run(max_steps=MAX_STEPS)
    elapsed = time.perf_counter() - started
    return machine.steps, elapsed


def test_interp_throughput(emit_result):
    workload = _workload()
    modes = [(f"{engine}/{config}", predecoded, make_observers)
             for config, make_observers in CONFIGS
             for engine, predecoded in (("legacy", False),
                                        ("predecoded", True))]

    best = {name: None for name, _p, _m in modes}
    steps_by_mode = {}
    for _ in range(ROUNDS):
        for name, predecoded, make_observers in modes:
            steps, elapsed = _timed_run(workload, predecoded,
                                        make_observers)
            steps_by_mode[name] = steps
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed

    # both engines must have retired the identical step count, or the
    # comparison is meaningless
    legacy_steps = {n: s for n, s in steps_by_mode.items()
                    if n.startswith("legacy/")}
    for name, steps in legacy_steps.items():
        twin = name.replace("legacy/", "predecoded/")
        assert steps_by_mode[twin] == steps, (name, twin)

    record = {
        "workload": "apache_log(writers=3, requests=40)",
        "max_steps": MAX_STEPS,
        "rounds": ROUNDS,
        "modes": {
            name: {
                "seconds": round(seconds, 6),
                "steps": steps_by_mode[name],
                "steps_per_sec": round(steps_by_mode[name] / seconds),
            }
            for name, seconds in sorted(best.items())
        },
        "speedup": {},
        "floors": {"0-observers": MIN_SPEEDUP_BARE,
                   "full-svd": MIN_SPEEDUP_SVD},
    }
    for config, _make in CONFIGS:
        ratio = best[f"legacy/{config}"] / best[f"predecoded/{config}"]
        record["speedup"][config] = round(ratio, 3)

    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_interp.json"), record)
    emit_result("interp_throughput", json.dumps(record, indent=2))

    assert record["speedup"]["0-observers"] >= MIN_SPEEDUP_BARE, record
    assert record["speedup"]["full-svd"] >= MIN_SPEEDUP_SVD, record
