"""Ablation: address dependences on/off (paper §4.3, Figure 9).

Address dependences connect a store to the CU that computed its target
address.  They are SVD's mitigation for atomic regions performing
independent computations (Figure 9's queue fill): without them, the
field stores q_a[h]/q_b[h] never consult the CU that read ``head``.
"""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.harness import render_table
from repro.machine import RandomScheduler
from repro.workloads import queue_region


def measure(use_address_deps, seeds=range(6)):
    workload = queue_region(fixed=False)
    total = 0
    field_sites = set()
    detected_runs = 0
    for seed in seeds:
        svd = OnlineSVD(workload.program,
                        SvdConfig(use_address_deps=use_address_deps))
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.6), observers=[svd])
        machine.run()
        manifested = workload.validate(machine).errors > 0
        if manifested and svd.report.dynamic_count:
            detected_runs += 1
        total += svd.report.dynamic_count
        for v in svd.report:
            text = svd.program.locs[v.loc].text
            if "q_a" in text or "q_b" in text:
                field_sites.add(text)
    return total, len(field_sites), detected_runs


def test_address_deps_ablation(benchmark, emit_result):
    with_addr = benchmark.pedantic(measure, args=(True,),
                                   rounds=1, iterations=1)
    without_addr = measure(False)

    text = render_table(
        ["config", "dynamic reports", "field-store sites", "runs detected"],
        [("address deps ON (paper)", *with_addr),
         ("address deps OFF", *without_addr)],
        title="Ablation: address dependences (Figure 9 mitigation)")
    emit_result("ablation_address_deps", text)

    # with address deps the independent field stores become check points
    assert with_addr[1] > 0
    assert without_addr[1] == 0
    # coverage can only shrink without them
    assert with_addr[0] >= without_addr[0]
