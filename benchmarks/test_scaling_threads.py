"""Processor-count scaling (beyond the paper's fixed 4-CPU setup).

The paper evaluates on a 4-processor SMP.  This bench sweeps the worker
count on the Apache workload to show how detection behaves as
parallelism grows: more workers race more often (errors and true
positives rise), SVD's dynamic reports stay proportional to actual
erroneous interleavings rather than to conflicting access pairs (which
grow faster and drive FRD's counts), and the detector's tracked state
grows with the thread count, not the program.
"""

import pytest

from repro.core import OnlineSVD
from repro.detectors import FrontierRaceDetector
from repro.harness import render_table
from repro.machine import RandomScheduler
from repro.trace import TraceRecorder
from repro.workloads import apache_log


def run_with_workers(writers, seed=3):
    workload = apache_log(writers=writers, requests=18)
    svd = OnlineSVD(workload.program)
    recorder = TraceRecorder(workload.program, writers)
    machine = workload.make_machine(
        RandomScheduler(seed=seed, switch_prob=0.5),
        observers=[svd, recorder])
    machine.run(max_steps=500_000)
    frd = FrontierRaceDetector(workload.program).run(recorder.trace())
    outcome = workload.validate(machine)
    state = sum(d.peak_tracked_blocks for d in svd.threads.values())
    return {
        "writers": writers,
        "insts": svd.instructions,
        "errors": outcome.errors,
        "svd": svd.report.dynamic_count,
        "frd": frd.dynamic_count,
        "state": state,
    }


def test_thread_scaling(benchmark, emit_result):
    results = [benchmark.pedantic(run_with_workers, args=(2,),
                                  rounds=1, iterations=1)]
    for writers in (4, 6, 8):
        results.append(run_with_workers(writers))

    text = render_table(
        ["writers", "insts", "log errors", "SVD dyn", "FRD dyn",
         "tracked state"],
        [tuple(r.values()) for r in results],
        title="Scaling with processor count (Apache, buggy)")
    emit_result("scaling_threads", text)

    # SVD keeps detecting at every width where the error manifests
    for r in results:
        if r["errors"]:
            assert r["svd"] > 0, r
    # FRD noise grows at least as fast as SVD's reports
    assert results[-1]["frd"] >= results[-1]["svd"]
    # detector state grows with parallelism (per-thread tables)
    assert results[-1]["state"] > results[0]["state"]
