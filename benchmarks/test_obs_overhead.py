"""Observability overhead: disabled mode must be free, enabled mode cheap.

The ``repro.obs`` contract is that instrumentation sites cost nothing
when observability is off: hot paths branch on ``obs.metrics_enabled()``
once per phase (the engine swaps in a counting dispatcher only when
metrics are on) and every per-event code path is byte-identical to the
uninstrumented engine.  This benchmark pins that claim empirically --
best-of-N single-pass engine runs over one shared recording:

* **disabled** -- the instrumented engine with observability off; must
  stay within 5% of the interleaved baseline measurement (the two run
  identical code, so the gap is pure measurement noise);
* **enabled**  -- the same run under ``obs.session()``; recorded as an
  informational cost figure, not asserted (full metrics + spans).

Results land in ``benchmarks/out/BENCH_obs.json`` next to
``BENCH_engine.json`` so CI history tracks both.
"""

import json
import os
import time

import pytest

import repro.obs as obs
from repro.engine import DetectorEngine
from repro.machine.scheduler import RandomScheduler
from repro.workloads import apache_log

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

DETECTORS = ["svd", "frd", "lockset", "atomizer"]
ROUNDS = 5
#: disabled-mode overhead ceiling (same code as baseline, so this is a
#: noise bound; a regression here means a per-event hook crept in)
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def recorded():
    """One shared recording every timed mode replays (the same fixture
    the engine-throughput benchmark uses)."""
    workload = apache_log(writers=3, requests=40)
    machine = workload.make_machine(
        RandomScheduler(seed=11, switch_prob=0.3))
    result = DetectorEngine(workload.program, ["svd"]).run_machine(
        machine, max_steps=300_000, keep_trace=True)
    assert result.trace is not None and len(result.trace) > 10_000
    return workload.program, result.trace


def _run(program, trace):
    return DetectorEngine(program, DETECTORS).run_trace(trace)


def _run_enabled(program, trace):
    with obs.session():
        return _run(program, trace)


def _interleaved_best_of(modes, *args):
    """Best-of-ROUNDS per mode, rounds interleaved so CPU-frequency and
    cache drift hit every mode equally."""
    best = {name: None for name, _fn in modes}
    for _ in range(ROUNDS):
        for name, fn in modes:
            started = time.perf_counter()
            fn(*args)
            elapsed = time.perf_counter() - started
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    return best


def test_disabled_obs_is_free(recorded, emit_result):
    program, trace = recorded
    assert not obs.enabled()  # the disabled measurements must be honest

    best = _interleaved_best_of(
        [("baseline", _run), ("disabled", _run), ("enabled", _run_enabled)],
        program, trace)

    events = len(trace)
    disabled_overhead = best["disabled"] / best["baseline"] - 1.0
    enabled_overhead = best["enabled"] / best["baseline"] - 1.0
    record = {
        "events": events,
        "detectors": DETECTORS,
        "rounds": ROUNDS,
        "modes": {
            name: {
                "seconds": round(seconds, 6),
                "events_per_sec": round(events / seconds),
            }
            for name, seconds in sorted(best.items())
        },
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }

    # cross-reference the engine-throughput baseline when it exists, for
    # the artefact reader; no hard assert across files (CI noise)
    engine_bench = os.path.join(OUT_DIR, "BENCH_engine.json")
    if os.path.exists(engine_bench):
        with open(engine_bench) as fh:
            reference = json.load(fh)
        # note: the engine bench counts events * stream_passes per
        # second, so divide by its pass count to compare with `modes`
        record["engine_bench_single_pass"] = reference["single_pass"]

    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_obs.json"), record)
    emit_result("obs_overhead", json.dumps(record, indent=2))

    assert disabled_overhead < MAX_DISABLED_OVERHEAD, record


def test_enabled_obs_counts_are_complete(recorded):
    """The enabled run is not just cheap -- it is exact: per-kind
    dispatch counts must cover the whole stream for every phase."""
    program, trace = recorded
    with obs.session(tracing=False) as handle:
        result = _run(program, trace)
    counters = handle.registry.snapshot()["counters"]
    per_kind = sum(value for name, value in counters.items()
                   if name.startswith("engine.events.kind."))
    passes = result.stats.stream_passes
    assert counters["engine.events.read"] == len(trace) * passes
    assert per_kind == len(trace) * passes
    assert counters["engine.stream_passes"] == passes
