"""Ablation: check only input blocks vs all CU blocks (paper §4.3).

The paper chose to check only a CU's read set: "we found employing this
heuristic is more likely to find erroneous executions that are not
serializable, hence, reduces SVD's false positives."  The bench compares
both settings on a buggy workload (true-positive coverage must survive)
and on the race-free OLTP workload (false positives must not shrink when
checking more blocks).
"""

import pytest

from repro.core import SvdConfig
from repro.harness import render_table, run_workload
from repro.workloads import apache_log, pgsql_oltp


def measure(config):
    buggy_tp = fp_clean = buggy_dyn = 0
    for seed in range(3):
        buggy = run_workload(apache_log(), seed=seed, switch_prob=0.5,
                             svd_config=config, run_frd=False)
        buggy_tp += buggy.svd.dynamic_tp
        buggy_dyn += buggy.svd.dynamic_total
        clean = run_workload(pgsql_oltp(), seed=seed, switch_prob=0.5,
                             svd_config=config, run_frd=False)
        fp_clean += clean.svd.dynamic_fp
    return buggy_tp, buggy_dyn, fp_clean


def test_input_blocks_ablation(benchmark, emit_result):
    inputs_only = benchmark.pedantic(measure, args=(SvdConfig(),),
                                     rounds=1, iterations=1)
    all_blocks = measure(SvdConfig(check_all_blocks=True))

    text = render_table(
        ["config", "apache TPs", "apache dyn", "pgsql FPs"],
        [("input blocks only (paper)", *inputs_only),
         ("all blocks", *all_blocks)],
        title="Ablation: conflict check on rs vs rs+ws")
    emit_result("ablation_input_blocks", text)

    # the paper's configuration keeps full bug coverage ...
    assert inputs_only[0] > 0
    # ... while checking all blocks can only report at least as much
    assert all_blocks[1] >= inputs_only[1]
    assert all_blocks[2] >= inputs_only[2]
