"""§7.3 overheads: slowdown, memory, scalability (paper §7.3).

The paper reports: SVD slows the simulator by up to 65x, roughly doubles
memory, and -- the scalability claim -- the overhead does *not* grow with
program size, because SVD's work tracks the dynamic execution only.

We measure: wall-clock slowdown of machine+SVD over the bare machine on
three workloads of increasing static size, the detector-state footprint,
and assert the slowdown trend stays flat (within noise) as the static
program grows.
"""

import pytest

from repro.harness import measure_overhead, render_table
from repro.workloads import apache_log, mysql_tablelock, pgsql_oltp


@pytest.fixture(scope="module")
def overheads():
    workloads = [
        mysql_tablelock(ops=60),
        apache_log(writers=3, requests=30, fixed=True),
        pgsql_oltp(terminals=4, txns=30),
    ]
    return [measure_overhead(w, repeats=2) for w in workloads]


def test_slowdown_factor(benchmark, overheads, emit_result):
    # time one representative instrumented run for the benchmark record
    result = benchmark.pedantic(
        measure_overhead, args=(mysql_tablelock(ops=40),),
        kwargs={"repeats": 1}, rounds=1, iterations=1)
    rows = [(o.workload, o.instructions, f"{o.bare_seconds * 1e3:.1f}",
             f"{o.svd_seconds * 1e3:.1f}", f"{o.slowdown:.1f}x",
             o.peak_detector_state, f"{o.memory_overhead_fraction:.2f}")
            for o in overheads]
    text = render_table(
        ["Workload", "Insts", "bare ms", "svd ms", "slowdown",
         "tracked state", "state/mem"],
        rows, title="Sec 7.3: SVD overhead (paper: up to 65x, ~2x memory)")
    emit_result("sec73_overhead", text)

    for o in overheads + [result]:
        # instrumentation costs real time ...
        assert o.slowdown > 1.5, o.workload
        # ... and tracked state exists but stays bounded by program memory
        assert 0 < o.peak_detector_state
        assert o.memory_overhead_fraction < 4.0


def test_overhead_does_not_grow_with_program_size(benchmark, overheads,
                                                  emit_result):
    """The scalability claim: per-instruction cost is flat across programs
    of increasing static size."""
    def per_instruction_costs():
        return [(o.workload, len_static(o), o.svd_seconds / o.instructions)
                for o in overheads]

    def len_static(o):
        return o.instructions  # placeholder for table ordering

    costs = benchmark.pedantic(per_instruction_costs, rounds=1, iterations=1)
    per_inst = [c[2] for c in costs]
    # flat within a small factor (the paper: "overhead did not increase
    # as the program size increases")
    assert max(per_inst) / min(per_inst) < 5.0
    text = "\n".join(f"{name}: {cost * 1e6:.2f} us/instruction"
                     for name, _s, cost in costs)
    emit_result("sec73_scalability", text)
