"""Ablation: CU cut at condition waits (extension beyond the paper).

The paper predates monitor-aware SVD: a CU spanning a ``wait`` keeps its
input blocks while other threads legitimately mutate them (that's what
the wait is *for*), so monitor-style code produces strict-2PL-gap false
positives.  The ``cut_at_wait`` knob closes the waiting thread's CUs at
the wait -- the same argument as cutting at shared dependences: the
region's atomicity intentionally ends there.

The bench quantifies the effect on the bounded-buffer workload and
verifies bug coverage is unharmed on the paper's workloads (which use no
condition variables, so the knob must be a strict no-op there).
"""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.harness import render_table, run_workload
from repro.machine import RandomScheduler
from repro.workloads import apache_log, bounded_buffer


def monitor_fps(cut, seeds=range(4)):
    workload = bounded_buffer()
    total = 0
    errors = 0
    for seed in seeds:
        svd = OnlineSVD(workload.program, SvdConfig(cut_at_wait=cut))
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5), observers=[svd])
        machine.run(max_steps=400_000)
        total += svd.report.dynamic_count
        errors += workload.validate(machine).errors
    assert errors == 0  # the workload itself is always correct
    return total


def test_monitor_cut_ablation(benchmark, emit_result):
    without_cut = benchmark.pedantic(monitor_fps, args=(False,),
                                     rounds=1, iterations=1)
    with_cut = monitor_fps(True)

    # no-op check on a lock-only workload: identical reports either way
    apache = apache_log()
    baseline = run_workload(apache, seed=3, switch_prob=0.5,
                            run_frd=False)
    with_knob = run_workload(apache, seed=3, switch_prob=0.5,
                             run_frd=False,
                             svd_config=SvdConfig(cut_at_wait=True))

    text = render_table(
        ["config", "bounded-buffer FPs (4 seeds)", "apache reports"],
        [("paper behaviour (no wait cut)", without_cut,
          baseline.svd.dynamic_total),
         ("cut_at_wait=True", with_cut, with_knob.svd.dynamic_total)],
        title="Ablation: CU cut at condition waits (monitor extension)")
    emit_result("ablation_monitor_cut", text)

    assert with_cut < without_cut
    assert with_knob.svd.dynamic_total == baseline.svd.dynamic_total
    assert with_knob.svd.dynamic_tp == baseline.svd.dynamic_tp
