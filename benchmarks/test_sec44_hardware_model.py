"""§4.4: potential hardware SVD, first-order cost model.

"As more transistors become available on-chip, we believe that the
overhead of the software version SVD can be dramatically reduced if some
parts of it are implemented in hardware."  This bench runs the three
server workloads under the online detector, feeds the measured operation
mix into the cost model (datapath-piggybacked propagation, cache-resident
CU tables, coherence-piggybacked conflict detection) and reports the
estimated software vs hardware slowdowns.
"""

import pytest

from repro.core import OnlineSVD, estimate_hardware_cost
from repro.harness import render_table
from repro.machine import RandomScheduler
from repro.workloads import apache_log, mysql_prepared, pgsql_oltp


def estimate_for(workload, seed=3):
    svd = OnlineSVD(workload.program)
    machine = workload.make_machine(
        RandomScheduler(seed=seed, switch_prob=0.4), observers=[svd])
    machine.run(max_steps=400_000)
    return estimate_hardware_cost(svd)


def test_hardware_model(benchmark, emit_result):
    apache = benchmark.pedantic(estimate_for, args=(apache_log(),),
                                rounds=1, iterations=1)
    mysql = estimate_for(mysql_prepared())
    pgsql = estimate_for(pgsql_oltp())

    rows = []
    for name, est in (("apache", apache), ("mysql", mysql),
                      ("pgsql", pgsql)):
        rows.append((name, est.instructions,
                     est.counts["remote_messages"],
                     f"{est.sw_slowdown:.1f}x",
                     f"{est.hw_slowdown:.2f}x",
                     f"{est.speedup_over_software:.0f}x"))
    text = render_table(
        ["workload", "insts", "remote msgs", "sw slowdown (model)",
         "hw slowdown (model)", "hw speedup"],
        rows,
        title="Sec 4.4: hardware SVD cost model "
              "(paper: software up to 65x; hardware 'dramatically' less)")
    emit_result("sec44_hardware_model", text)

    for est in (apache, mysql, pgsql):
        # the software model sits in the paper's measured regime
        assert 10 < est.sw_slowdown < 150
        # and hardware assists reduce it by an order of magnitude+
        assert est.speedup_over_software > 10
