"""Ablation: offline (Figures 5-6) vs online (Figure 7) algorithms.

Three configurations over identical traces:

* offline with control-dependence merging (the Figure 5 literal);
* offline merging via true dependences only (the §4.3 restriction);
* the online one-pass detector.

The offline algorithm scans full CU windows and all conflicting pairs,
so it is the most sensitive; the online algorithm trades sensitivity
for one-pass operation and fewer false positives (input blocks only,
store-time checks).
"""

import pytest

from repro.core import OfflineSVD, OnlineSVD
from repro.harness import render_table
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.trace import TraceRecorder
from tests.conftest import COUNTER_LOCKED, COUNTER_RACE


def run_all(source, threads, seed):
    program = compile_source(source)
    online = OnlineSVD(program)
    recorder = TraceRecorder(program, len(threads))
    machine = Machine(program, threads,
                      scheduler=RandomScheduler(seed=seed, switch_prob=0.5),
                      observers=[online, recorder])
    machine.run()
    trace = recorder.trace()
    off_ctrl = OfflineSVD(program, merge_control=True).run(trace)
    off_true = OfflineSVD(program, merge_control=False).run(trace)
    return {
        "offline (ctrl merge)": (off_ctrl.cu_count,
                                 off_ctrl.report.dynamic_count),
        "offline (true only)": (off_true.cu_count,
                                off_true.report.dynamic_count),
        "online": (online.cus_created, online.report.dynamic_count),
    }


def test_offline_vs_online(benchmark, emit_result):
    racy = benchmark.pedantic(
        run_all, args=(COUNTER_RACE, [("worker", (25,)), ("worker", (25,))], 1),
        rounds=1, iterations=1)
    locked = run_all(COUNTER_LOCKED,
                     [("worker", (25,)), ("worker", (25,))], 1)

    rows = []
    for name in racy:
        rows.append((name, racy[name][0], racy[name][1],
                     locked[name][0], locked[name][1]))
    text = render_table(
        ["algorithm", "racy CUs", "racy reports",
         "locked CUs", "locked reports"],
        rows, title="Ablation: offline vs online algorithm")
    emit_result("ablation_offline_vs_online", text)

    # all three catch the race
    for name, counts in racy.items():
        assert counts[1] > 0, name
    # control merging coarsens: fewest CUs
    assert racy["offline (ctrl merge)"][0] <= racy["offline (true only)"][0]
    # the offline full-window scan is the most sensitive
    assert racy["offline (ctrl merge)"][1] >= racy["online"][1]
    # on the correctly locked program the online detector is silent while
    # the literal offline algorithm pays for its oversized CUs
    assert locked["online"][1] == 0
    assert locked["offline (ctrl merge)"][1] >= locked["online"][1]
