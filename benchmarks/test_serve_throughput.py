"""Serve-mode sustained throughput: executions/sec through a full
supervisor fleet.

``repro serve`` adds a supervision layer on top of the engine --
watchdog polling, per-execution asyncio tasks, the degradation ladder,
restart bookkeeping, heartbeat sync.  This bench pins the claim that
the layer is cheap: a fleet of short executions must sustain at least
``bench_gate.FLOORS["BENCH_serve.json"]["executions_per_sec"]``
completed executions per second end to end (recorded ~240 exec/s on
the reference box; the floor is a quarter of that, absorbing CI
machine variance while still catching an order-of-magnitude
regression in the supervision overhead).

Measurement notes: the fleet runs with no event budget (ladder pinned
at ``full``), no faults, and no HTTP endpoint, so the timed path is
pure supervise-execute-analyze.  Up to ``ROUNDS`` rounds run with an
early exit once one clears the floor with margin -- noise can only
make a fast build look slow, never a slow build pass.
"""

import json
import os
import time

from repro.harness.bench_gate import FLOORS
from repro.serve import ServeConfig, Supervisor

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

EXECUTIONS = 40
MAX_STEPS = 2_000
CONCURRENCY = 4
ROUNDS = 3
FLOOR = FLOORS["BENCH_serve.json"]["executions_per_sec"]


def _run_fleet():
    """One timed fleet; returns (executions/sec, events/sec, totals)."""
    config = ServeConfig(workloads=("apache",), executions=EXECUTIONS,
                         concurrency=CONCURRENCY, max_steps=MAX_STEPS)
    supervisor = Supervisor(config)
    started = time.perf_counter()
    outcome = supervisor.run()
    seconds = time.perf_counter() - started
    totals = supervisor.totals
    assert outcome in ("ok", "violations"), outcome
    assert totals.completed == EXECUTIONS
    assert totals.failed == 0
    return (totals.completed / seconds, totals.events / seconds,
            seconds, totals)


def test_serve_sustained_executions_per_sec(emit_result):
    # warm one small fleet so the timed rounds do not pay the one-time
    # workload compilation cost
    warm = ServeConfig(workloads=("apache",), executions=2,
                       concurrency=2, max_steps=500)
    Supervisor(warm).run()

    best_eps, best_events, best_seconds, totals = _run_fleet()
    rounds = 1
    while best_eps < FLOOR * 1.2 and rounds < ROUNDS:
        eps, events, seconds, totals = _run_fleet()
        if eps > best_eps:
            best_eps, best_events, best_seconds = eps, events, seconds
        rounds += 1

    record = {
        "executions": EXECUTIONS,
        "concurrency": CONCURRENCY,
        "max_steps": MAX_STEPS,
        "rounds": rounds,
        "seconds": round(best_seconds, 6),
        "executions_per_sec": round(best_eps, 1),
        "events_per_sec": round(best_events),
        "violations": totals.violations,
        "executions_per_sec_floor": FLOOR,
    }
    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_serve.json"), record)

    emit_result("serve_throughput", json.dumps(record, indent=2))
    # the pinned claim: supervision overhead stays cheap (also enforced
    # on the artefact in CI via ``repro bench --check``)
    assert best_eps >= FLOOR, record
