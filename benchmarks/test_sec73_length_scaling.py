"""§7.3 length scaling: false positives vs execution length.

The paper: "the number of static false positives grows slowly as the
length of the execution increases ... dynamic false positives
approximately increased linearly with the execution length."

We sweep the benign-race MySQL workload (all reports are FPs there) and
check both series.  FRD supplies the dynamic series (its benign-race
reports recur every iteration); SVD supplies the static plateau.
"""

import pytest

from repro.harness import length_sweep, render_table
from repro.workloads import mysql_tablelock, pgsql_oltp


@pytest.fixture(scope="module")
def points():
    return length_sweep(lambda ops: mysql_tablelock(ops=ops),
                        [10, 20, 40, 80, 160])


def test_length_scaling(benchmark, points, emit_result):
    extra = benchmark.pedantic(
        length_sweep, args=(lambda t: pgsql_oltp(txns=t), [10, 20, 40]),
        rounds=1, iterations=1)
    rows = [(p.ops, p.instructions, p.svd_static_fp, p.svd_dynamic_fp,
             p.frd_static_fp, p.frd_dynamic_fp) for p in points]
    rows += [(f"pgsql-{p.ops}", p.instructions, p.svd_static_fp,
              p.svd_dynamic_fp, p.frd_static_fp, p.frd_dynamic_fp)
             for p in extra]
    text = render_table(
        ["ops", "insts", "SVD staticFP", "SVD dynFP",
         "FRD staticFP", "FRD dynFP"],
        rows,
        title="Sec 7.3: FPs vs execution length "
              "(static plateaus, dynamic grows ~linearly)")
    emit_result("sec73_length_scaling", text)

    # static FPs plateau: the longest run has no more static sites than
    # a small constant over the shortest
    assert points[-1].frd_static_fp <= points[0].frd_static_fp + 2
    assert points[-1].svd_static_fp <= points[0].svd_static_fp + 2

    # dynamic FPs grow roughly linearly with length (FRD's benign races):
    # 16x the ops must give at least 4x the dynamic reports
    first, last = points[0], points[-1]
    if first.frd_dynamic_fp:
        assert last.frd_dynamic_fp >= 4 * first.frd_dynamic_fp
    # and sublinearity check on the static axis vs instruction growth
    growth = last.instructions / first.instructions
    assert growth > 8  # the sweep really did scale the execution
