"""Engine throughput: batched single-pass dispatch vs per-event re-feed.

The point of the batched columnar pipeline is "record once, analyze
many, *and* walk the stream as columns": N detectors over one recording
should cost one batched stream pass per scheduled *phase*, while the
legacy strategy feeds each detector its own per-event engine.  This
bench pins the claim three ways --

* **deterministically**: the 4-detector set (svd, frd, lockset,
  atomizer) schedules into exactly 2 phases, so the engine reads the
  stream twice, while per-detector engines cost 5 passes (atomizer's
  lockset prerequisite is re-run);
* **empirically**: paired wall clock of the two strategies over the
  identical trace must clear the pinned floor
  (``bench_gate.FLOORS["BENCH_engine.json"]["speedup"]``, 1.5x) -- a
  hard assert, re-checked in CI via ``repro bench --check``;
* **end to end**: a small ``repro campaign`` matrix (live machines, SVD
  polling, batched delivery) is timed and recorded as events/sec so the
  artefact tracks whole-pipeline throughput, not just replay dispatch.

Measurement notes: the two strategies are interleaved in ABBA quads so
both arms sample the same CPU state, the per-block speedup is the
*median* of paired ratios (robust against one arm catching a frequency
dip), and up to ``BLOCKS`` blocks run with an early exit once a block
clears the floor with margin -- wall-clock noise can only make a fast
build look slow, never a slow build look fast enough.
"""

import json
import os
import statistics
import time

import pytest

from repro.engine import DetectorEngine
from repro.harness.bench_gate import FLOORS
from repro.harness.campaign import (CampaignSpec, ConfigSpec,
                                    WorkloadSpec, run_campaign)
from repro.machine.scheduler import RandomScheduler
from repro.workloads import apache_log

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

DETECTORS = ["svd", "frd", "lockset", "atomizer"]
#: ABBA quads per measurement block
QUADS = 6
#: measurement blocks (best block wins; early exit above the margin)
BLOCKS = 3
SPEEDUP_FLOOR = FLOORS["BENCH_engine.json"]["speedup"]


@pytest.fixture(scope="module")
def recorded():
    """One shared recording every timed strategy replays."""
    workload = apache_log(writers=3, requests=40)
    machine = workload.make_machine(
        RandomScheduler(seed=11, switch_prob=0.3))
    result = DetectorEngine(workload.program, ["svd"]).run_machine(
        machine, max_steps=300_000, keep_trace=True)
    assert result.trace is not None and len(result.trace) > 10_000
    return workload.program, result.trace


def _single_pass(program, trace):
    """One batched engine, all four detectors, one replay."""
    return [DetectorEngine(program, DETECTORS).run_trace(trace)]


def _per_detector_refeed(program, trace):
    """The legacy strategy: each detector gets a private per-event
    engine and the stream is re-fed from scratch for every one."""
    return [DetectorEngine(program, [name], batched=False).run_trace(trace)
            for name in DETECTORS]


def _timed(fn, *args):
    started = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - started, out


def _measure_block(program, trace):
    """One block of ABBA quads; returns (median speedup, best single
    seconds, best refeed seconds)."""
    ratios, singles, refeeds = [], [], []
    for _ in range(QUADS):
        s1, _ = _timed(_single_pass, program, trace)
        r1, _ = _timed(_per_detector_refeed, program, trace)
        r2, _ = _timed(_per_detector_refeed, program, trace)
        s2, _ = _timed(_single_pass, program, trace)
        singles += [s1, s2]
        refeeds += [r1, r2]
        ratios.append(min(r1, r2) / min(s1, s2))
    return statistics.median(ratios), min(singles), min(refeeds)


def _campaign_throughput():
    """Time a small end-to-end campaign (live machines + batched
    delivery); returns (events, seconds, events/sec, ok runs)."""
    spec = CampaignSpec(
        workloads=[WorkloadSpec(name="stringbuffer"),
                   WorkloadSpec(name="apache")],
        configs=[ConfigSpec(name="bench", max_steps=60_000)],
        seeds=2)
    started = time.perf_counter()
    report = run_campaign(spec)
    seconds = time.perf_counter() - started
    events = sum(r.instructions for r in report.results if r.ok)
    assert events > 0, "campaign produced no completed runs"
    return events, seconds, len([r for r in report.results if r.ok])


def test_single_pass_beats_refeed(recorded, emit_result):
    program, trace = recorded
    # warm every per-run cache (decoded program, trace columns/windows)
    # so the first timed round does not pay one-time costs
    _single_pass(program, trace)
    _per_detector_refeed(program, trace)

    single = _single_pass(program, trace)
    refeed = _per_detector_refeed(program, trace)
    single_passes = sum(r.stats.stream_passes for r in single)
    refeed_passes = sum(r.stats.stream_passes for r in refeed)
    # the deterministic half of the claim: 2 scheduled phases vs
    # 1 (svd) + 1 (frd) + 1 (lockset) + 2 (atomizer + its lockset dep)
    assert single_passes == 2
    assert refeed_passes == 5

    # identical verdicts either way -- same stream, same detectors
    refeed_reports = {name: run.report(name)
                      for name, run in zip(DETECTORS, refeed)}
    for name in DETECTORS:
        assert (single[0].report(name).dynamic_count
                == refeed_reports[name].dynamic_count), name

    speedup, single_s, refeed_s = _measure_block(program, trace)
    blocks = 1
    while speedup < SPEEDUP_FLOOR * 1.03 and blocks < BLOCKS:
        block_speedup, block_single, block_refeed = _measure_block(
            program, trace)
        speedup = max(speedup, block_speedup)
        single_s = min(single_s, block_single)
        refeed_s = min(refeed_s, block_refeed)
        blocks += 1

    events = len(trace)
    campaign_events, campaign_s, campaign_ok = _campaign_throughput()
    record = {
        "events": events,
        "detectors": DETECTORS,
        "quads": QUADS,
        "blocks": blocks,
        "single_pass": {
            "seconds": round(single_s, 6),
            "stream_passes": single_passes,
            "events_per_sec": round(events * single_passes / single_s),
        },
        "per_detector_refeed": {
            "seconds": round(refeed_s, 6),
            "stream_passes": refeed_passes,
            "events_per_sec": round(events * refeed_passes / refeed_s),
        },
        "campaign": {
            "events": campaign_events,
            "ok_runs": campaign_ok,
            "seconds": round(campaign_s, 6),
            "events_per_sec": round(campaign_events / campaign_s),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_engine.json"), record)

    emit_result("engine_throughput", json.dumps(record, indent=2))
    # the pinned claim: batched single-pass dispatch beats per-event
    # re-feed by the gate floor (also enforced on the artefact in CI)
    assert speedup >= SPEEDUP_FLOOR, record
