"""Engine throughput: single-pass dispatch vs per-detector re-feed.

The point of :class:`repro.engine.DetectorEngine` is "record once,
analyze many": N detectors over one recording should cost one stream
pass per scheduled *phase*, not one (or more) per detector.  This smoke
pins that claim two ways --

* **deterministically**: the 4-detector set (svd, frd, lockset,
  atomizer) schedules into exactly 2 phases, so the engine reads the
  stream twice, while feeding each detector its own private engine
  costs 5 passes (atomizer's lockset prerequisite is re-run);
* **empirically**: best-of-N wall clock of the two strategies over the
  identical trace, written to ``benchmarks/out/BENCH_engine.json`` as
  events/sec so CI history tracks the dispatch overhead.
"""

import json
import os
import time

import pytest

from repro.engine import DetectorEngine
from repro.machine.scheduler import RandomScheduler
from repro.workloads import apache_log

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

DETECTORS = ["svd", "frd", "lockset", "atomizer"]
ROUNDS = 5


@pytest.fixture(scope="module")
def recorded():
    """One shared recording every timed strategy replays."""
    workload = apache_log(writers=3, requests=40)
    machine = workload.make_machine(
        RandomScheduler(seed=11, switch_prob=0.3))
    result = DetectorEngine(workload.program, ["svd"]).run_machine(
        machine, max_steps=300_000, keep_trace=True)
    assert result.trace is not None and len(result.trace) > 10_000
    return workload.program, result.trace


def _single_pass(program, trace):
    return [DetectorEngine(program, DETECTORS).run_trace(trace)]


def _per_detector_refeed(program, trace):
    return [DetectorEngine(program, [name]).run_trace(trace)
            for name in DETECTORS]


def _best_of(fn, *args):
    best, results = None, None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        out = fn(*args)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best, results = elapsed, out
    return best, results


def test_single_pass_beats_refeed(recorded, emit_result):
    program, trace = recorded
    single_s, single = _best_of(_single_pass, program, trace)
    refeed_s, refeed = _best_of(_per_detector_refeed, program, trace)

    single_passes = sum(r.stats.stream_passes for r in single)
    refeed_passes = sum(r.stats.stream_passes for r in refeed)
    # the deterministic half of the claim: 2 scheduled phases vs
    # 1 (svd) + 1 (frd) + 1 (lockset) + 2 (atomizer + its lockset dep)
    assert single_passes == 2
    assert refeed_passes == 5

    # identical verdicts either way -- same stream, same detectors
    refeed_reports = {name: run.report(name)
                      for name, run in zip(DETECTORS, refeed)}
    for name in DETECTORS:
        assert (single[0].report(name).dynamic_count
                == refeed_reports[name].dynamic_count), name

    events = len(trace)
    speedup = refeed_s / single_s
    record = {
        "events": events,
        "detectors": DETECTORS,
        "rounds": ROUNDS,
        "single_pass": {
            "seconds": round(single_s, 6),
            "stream_passes": single_passes,
            "events_per_sec": round(events * single_passes / single_s),
        },
        "per_detector_refeed": {
            "seconds": round(refeed_s, 6),
            "stream_passes": refeed_passes,
            "events_per_sec": round(events * refeed_passes / refeed_s),
        },
        "speedup": round(speedup, 3),
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_engine.json"), "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    emit_result("engine_throughput", json.dumps(record, indent=2))
    # soft floor against CI noise; locally the 5-vs-2 pass gap lands
    # well above 1x
    assert speedup > 0.7, record
