"""Detection-rate experiment: across many seeded executions, how often
does each detector catch the bug *when it manifests*?

Table 2 reports one or a few segments per program; this bench widens the
sample to quantify the claim behind "detect only erroneous executions":
on runs where the error manifests SVD must fire (online or via the
a-posteriori log), and on runs where it does not manifest SVD should
stay quiet -- whereas a race detector fires on nearly every run,
manifested or not (races exist in the program, not the execution).
"""

import pytest

from repro.harness import render_table, run_workload
from repro.workloads import apache_log, rwlock_db, stringbuffer

CASES = [
    ("apache", apache_log, 12),
    ("stringbuffer", stringbuffer, 12),
    ("rwlock (buggy)", lambda: rwlock_db(fixed=False), 12),
]


def survey(factory, seeds):
    manifested = svd_hits = frd_fires_clean = clean = svd_fires_clean = 0
    for seed in range(seeds):
        result = run_workload(factory(), seed=seed, switch_prob=0.5,
                              max_steps=400_000)
        if result.outcome.manifested:
            manifested += 1
            if result.svd.found_bug or result.posteriori_found_bug:
                svd_hits += 1
        else:
            clean += 1
            if result.frd.dynamic_total:
                frd_fires_clean += 1
            if result.svd.dynamic_tp:
                svd_fires_clean += 1
    return manifested, svd_hits, clean, svd_fires_clean, frd_fires_clean


def test_detection_rate(benchmark, emit_result):
    rows = []
    surveys = {}
    first = True
    for name, factory, seeds in CASES:
        if first:
            data = benchmark.pedantic(survey, args=(factory, seeds),
                                      rounds=1, iterations=1)
            first = False
        else:
            data = survey(factory, seeds)
        surveys[name] = data
        manifested, svd_hits, clean, svd_clean, frd_clean = data
        rows.append((name, f"{manifested}/{seeds}",
                     f"{svd_hits}/{manifested}" if manifested else "-",
                     f"{svd_clean}/{clean}" if clean else "-",
                     f"{frd_clean}/{clean}" if clean else "-"))
    text = render_table(
        ["workload", "manifested", "SVD caught (of manifested)",
         "SVD fired on clean runs", "FRD fired on clean runs"],
        rows,
        title="Detection rates across seeds (detect-only-erroneous claim)")
    emit_result("detection_rate", text)

    for name, data in surveys.items():
        manifested, svd_hits, clean, svd_clean, frd_clean = data
        assert manifested >= 3, f"{name}: too few manifestations to judge"
        # SVD (online + a-posteriori) catches nearly every manifested run
        assert svd_hits >= manifested - 1, name
        # on clean runs of these buggy programs, the race detector keeps
        # firing while SVD's *true-positive-site* reports need the error
        if clean:
            assert frd_clean == clean, name
