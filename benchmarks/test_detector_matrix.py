"""Detector matrix: every analysis on every key workload.

Extends Table 2 with the §8 related-work detectors implemented in
:mod:`repro.detectors` (lockset, Atomizer, stale-value, lock-order,
hybrid) plus the precise checker, all on identical executions: the
:class:`repro.engine.DetectorEngine` multiplexes one live run per
workload to the whole registry-resolved detector set.  The matrix shows
each detector's characteristic blind spots and noise sources at a
glance.
"""

import pytest

from repro.engine import DetectorEngine
from repro.harness import render_table
from repro.machine import RandomScheduler
from repro.workloads import (apache_log, mysql_prepared, mysql_tablelock,
                             pgsql_oltp, spsc_ring)

WORKLOADS = [
    ("apache (buggy)", apache_log, 3),
    ("mysql-prep (buggy)", mysql_prepared, 3),
    ("tablelock (benign)", mysql_tablelock, 1),
    ("pgsql (clean)", pgsql_oltp, 1),
    ("spsc-ring (clean)", spsc_ring, 1),
]

DETECTORS = ["svd", "precise", "offline", "frd", "lockset", "atomizer",
             "stale", "lockorder", "hybrid"]


def run_matrix():
    rows = []
    cells = {}
    for label, factory, seed in WORKLOADS:
        workload = factory()
        engine = DetectorEngine(workload.program, DETECTORS)
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5))
        result = engine.run_machine(machine, max_steps=300_000)
        counts = {name: result.report(name).dynamic_count
                  for name in DETECTORS}
        cells[label] = counts
        rows.append((label, *counts.values()))
    headers = ["workload"] + DETECTORS
    return headers, rows, cells


def test_detector_matrix(benchmark, emit_result):
    headers, rows, cells = benchmark.pedantic(run_matrix, rounds=1,
                                              iterations=1)
    text = render_table(headers, rows,
                        title="Detector matrix (dynamic report counts, "
                              "identical executions)")
    emit_result("detector_matrix", text)

    # the buggy programs are caught by both SVD and the race detectors
    for label in ("apache (buggy)", "mysql-prep (buggy)"):
        assert cells[label]["svd"] > 0 or cells[label]["offline"] > 0
        assert cells[label]["frd"] > 0
        assert cells[label]["hybrid"] > 0

    # the Figure 1 benign races: every race-based detector fires, SVD is
    # the only silent one
    benign = cells["tablelock (benign)"]
    assert benign["svd"] == 0
    assert benign["frd"] > 0
    assert benign["lockset"] > 0

    # hybrid is a subset of FRD everywhere
    for counts in cells.values():
        assert counts["hybrid"] <= counts["frd"]

    # no workload in the matrix has inverted lock orders
    for counts in cells.values():
        assert counts["lockorder"] == 0

    # the stale-value detector flags the CS-escape idiom in pgsql --
    # the same idiom behind SVD's pgsql false positives
    assert cells["pgsql (clean)"]["stale"] > 0
