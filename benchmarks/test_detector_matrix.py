"""Detector matrix: every analysis on every key workload.

Extends Table 2 with the §8 related-work detectors implemented in
:mod:`repro.detectors` (lockset, Atomizer, stale-value, lock-order,
hybrid) plus the precise checker, all on identical executions.  The
matrix shows each detector's characteristic blind spots and noise
sources at a glance.
"""

import pytest

from repro.core import OfflineSVD, OnlineSVD, PreciseSVD
from repro.detectors import (AtomizerDetector, FrontierRaceDetector,
                             HybridRaceDetector, LockOrderDetector,
                             LocksetDetector, StaleValueDetector)
from repro.harness import render_table
from repro.machine import RandomScheduler
from repro.trace import TraceRecorder
from repro.workloads import (apache_log, mysql_prepared, mysql_tablelock,
                             pgsql_oltp, spsc_ring)

WORKLOADS = [
    ("apache (buggy)", apache_log, 3),
    ("mysql-prep (buggy)", mysql_prepared, 3),
    ("tablelock (benign)", mysql_tablelock, 1),
    ("pgsql (clean)", pgsql_oltp, 1),
    ("spsc-ring (clean)", spsc_ring, 1),
]


def run_matrix():
    rows = []
    cells = {}
    for label, factory, seed in WORKLOADS:
        workload = factory()
        program = workload.program
        online = OnlineSVD(program)
        precise = PreciseSVD(program)
        recorder = TraceRecorder(program, len(workload.threads))
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5),
            observers=[online, precise, recorder])
        machine.run(max_steps=300_000)
        trace = recorder.trace()
        counts = {
            "svd": online.report.dynamic_count,
            "precise": precise.report.dynamic_count,
            "offline": OfflineSVD(program).run(trace).report.dynamic_count,
            "frd": FrontierRaceDetector(program).run(trace).dynamic_count,
            "lockset": LocksetDetector(program).run(trace).dynamic_count,
            "atomizer": AtomizerDetector(program).run(trace).dynamic_count,
            "stale": StaleValueDetector(program).run(trace).dynamic_count,
            "lockorder": LockOrderDetector(program).run(trace).dynamic_count,
            "hybrid": HybridRaceDetector(program).run(trace).dynamic_count,
        }
        cells[label] = counts
        rows.append((label, *counts.values()))
    headers = ["workload", "svd", "precise", "offline", "frd", "lockset",
               "atomizer", "stale", "lockorder", "hybrid"]
    return headers, rows, cells


def test_detector_matrix(benchmark, emit_result):
    headers, rows, cells = benchmark.pedantic(run_matrix, rounds=1,
                                              iterations=1)
    text = render_table(headers, rows,
                        title="Detector matrix (dynamic report counts, "
                              "identical executions)")
    emit_result("detector_matrix", text)

    # the buggy programs are caught by both SVD and the race detectors
    for label in ("apache (buggy)", "mysql-prep (buggy)"):
        assert cells[label]["svd"] > 0 or cells[label]["offline"] > 0
        assert cells[label]["frd"] > 0
        assert cells[label]["hybrid"] > 0

    # the Figure 1 benign races: every race-based detector fires, SVD is
    # the only silent one
    benign = cells["tablelock (benign)"]
    assert benign["svd"] == 0
    assert benign["frd"] > 0
    assert benign["lockset"] > 0

    # hybrid is a subset of FRD everywhere
    for counts in cells.values():
        assert counts["hybrid"] <= counts["frd"]

    # no workload in the matrix has inverted lock orders
    for counts in cells.values():
        assert counts["lockorder"] == 0

    # the stale-value detector flags the CS-escape idiom in pgsql --
    # the same idiom behind SVD's pgsql false positives
    assert cells["pgsql (clean)"]["stale"] > 0
