"""Ablation: strict-2PL heuristic vs precise conflict-cycle detection.

The paper's §3.3 chooses strict 2PL over exact serializability checking
for cost; this bench implements the deferred "more accurate detection"
and quantifies the trade-off on identical executions:

* the ticket pattern (CS value used after release): 2PL's known
  false-positive class disappears under the precise test;
* the benign-race workload: precise detection inherits the CU
  approximation unfiltered -- a never-cut reader CU genuinely cycles
  with the writers it straddles -- so *new* false positives appear that
  the store-time 2PL check implicitly suppresses;
* detection cost: edges + cycle checks per shared access.

Net: neither dominates; the paper's heuristic is the better engineering
point, and this bench is the evidence.
"""

import pytest

from repro.core import OnlineSVD, PreciseSVD
from repro.harness import render_table
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.workloads import apache_log, mysql_tablelock

TICKET = """
shared int ticket = 0;
lock m;
local int stats;
thread worker(int n) {
    int i = 0;
    while (i < n) {
        acquire(m);
        int mine = ticket;
        ticket = mine + 1;
        release(m);
        stats = stats + mine;
        i = i + 1;
    }
}
"""


def run_pair(program, threads, seeds=range(3)):
    total_2pl = total_precise = checks = 0
    for seed in seeds:
        two_pl = OnlineSVD(program)
        Machine(program, threads,
                scheduler=RandomScheduler(seed=seed, switch_prob=0.5),
                observers=[two_pl]).run(max_steps=300_000)
        precise = PreciseSVD(program)
        Machine(program, threads,
                scheduler=RandomScheduler(seed=seed, switch_prob=0.5),
                observers=[precise]).run(max_steps=300_000)
        total_2pl += two_pl.report.dynamic_count
        total_precise += precise.report.dynamic_count
        checks += precise.cycle_checks
    return total_2pl, total_precise, checks


def test_precise_mode_ablation(benchmark, emit_result):
    ticket_prog = compile_source(TICKET)
    ticket = benchmark.pedantic(
        run_pair, args=(ticket_prog, [("worker", (20,)), ("worker", (20,))]),
        rounds=1, iterations=1)

    tablelock = mysql_tablelock()
    benign = run_pair(tablelock.program, tablelock.threads)

    apache = apache_log()
    buggy = run_pair(apache.program, apache.threads)

    text = render_table(
        ["workload", "2PL reports", "precise reports", "cycle checks"],
        [("ticket (2PL-gap FPs)", *ticket),
         ("mysql-tablelock (benign)", *benign),
         ("apache (buggy)", *buggy)],
        title="Ablation: strict-2PL heuristic vs precise cycle detection")
    emit_result("ablation_precise_mode", text)

    # the 2PL-gap class disappears under the precise test ...
    assert ticket[0] > 0
    assert ticket[1] == 0
    # ... but the precise test pays for never-cut CUs on the benign races
    assert benign[0] == 0
    assert benign[1] > 0
    # both catch the real bug
    assert buggy[0] > 0 and buggy[1] > 0
    # and the precise mode really does extra graph work
    assert ticket[2] + benign[2] + buggy[2] > 0
