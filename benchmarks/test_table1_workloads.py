"""Table 1: test-program inventory (paper §6, Table 1).

Regenerates the workload characterisation: each of the paper's server
programs (plus the auxiliary models), its thread count, static size,
dynamic instruction count and whether the modelled erroneous execution
manifests.
"""

from repro.harness.table1 import render_table1, table1_rows


def test_table1(benchmark, emit_result):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    text = render_table1(rows)
    emit_result("table1", text)

    by_name = {r.name: r for r in rows}
    # the paper's three server programs are present
    assert {"apache", "mysql-prepared", "mysql-tablelock", "pgsql"} <= \
        set(by_name)
    # every workload executed a non-trivial number of instructions
    for row in rows:
        assert row.instructions > 1000, row.name
    # the race-free programs report no errors
    assert "no known errors" in by_name["pgsql"].erroneous_execution
    assert "no known errors" in by_name["mysql-tablelock"].erroneous_execution
