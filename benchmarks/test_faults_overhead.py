"""Fault-injection overhead: the disabled-mode hooks must be free.

The ``repro.faults`` contract mirrors ``repro.obs``: hardened code asks
the switchboard for a plan **once per run** (engine construction wraps
callbacks only when an analysis fault targets them; ``run_trace``
consults ``faults.active()`` once before the stream loop; the machine
binds its stream injector at construction), so with no plan armed every
per-event code path is byte-identical to the unhardened engine.

Two measurements pin that claim:

* **deterministic** (asserted) -- total interpreter function calls per
  engine run under ``cProfile``.  The counts are exactly reproducible,
  so the "no per-event hook" claim is checked at machine precision: a
  hook that fires per event would add >= ``len(trace)`` calls (~4% of a
  run); disabled mode must add **zero** and an armed-but-empty plan
  only a per-run constant, both far under ``MAX_DISABLED_OVERHEAD``.
* **wall-clock** (recorded) -- interleaved best-of-ROUNDS single-pass
  engine runs over one shared recording, the same methodology as
  ``BENCH_obs.json``.  Recorded for CI history, gated only loosely:
  shared runners jitter far more than the bound under test, so the
  tight bound rides on the deterministic measurement above.

Results land in ``benchmarks/out/BENCH_faults.json`` next to
``BENCH_obs.json``.
"""

import cProfile
import gc
import json
import os
import pstats
import time

import pytest

import repro.faults.runtime as faults
from repro.engine import DetectorEngine
from repro.faults import FaultPlan
from repro.machine.scheduler import RandomScheduler
from repro.workloads import apache_log

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

DETECTORS = ["svd", "frd", "lockset", "atomizer"]
ROUNDS = 5
#: disabled-mode overhead ceiling, asserted on the deterministic
#: call-count measurement (a per-event hook would cost ~4%)
MAX_DISABLED_OVERHEAD = 0.02
#: wall-clock sanity gate only -- shared-runner jitter on identical
#: code routinely exceeds 5%, so this catches gross regressions without
#: flaking while the call-count assertion carries the tight bound
MAX_WALL_CLOCK_OVERHEAD = 0.25


@pytest.fixture(scope="module")
def recorded():
    """One shared recording every timed mode replays (the same fixture
    the engine-throughput and obs benchmarks use)."""
    workload = apache_log(writers=3, requests=40)
    machine = workload.make_machine(
        RandomScheduler(seed=11, switch_prob=0.3))
    result = DetectorEngine(workload.program, ["svd"]).run_machine(
        machine, max_steps=300_000, keep_trace=True)
    assert result.trace is not None and len(result.trace) > 10_000
    return workload.program, result.trace


def _run(program, trace):
    return DetectorEngine(program, DETECTORS).run_trace(trace)


def _run_armed_noop(program, trace):
    with faults.install(FaultPlan([])):
        return _run(program, trace)


def _total_calls(fn, *args):
    """Interpreter function calls for one invocation -- deterministic,
    so mode deltas are exact (GC off so collection-triggered calls
    cannot alias as hook cost)."""
    gc.collect()
    gc.disable()
    try:
        profile = cProfile.Profile()
        profile.enable()
        fn(*args)
        profile.disable()
        return pstats.Stats(profile).total_calls
    finally:
        gc.enable()


def _interleaved_best_of(modes, *args):
    """Best-of-ROUNDS per mode, rounds interleaved so CPU-frequency and
    cache drift hit every mode equally."""
    best = {name: None for name, _fn in modes}
    for _name, fn in modes:  # untimed warmup
        fn(*args)
    for _ in range(ROUNDS):
        for name, fn in modes:
            gc.collect()
            started = time.perf_counter()
            fn(*args)
            elapsed = time.perf_counter() - started
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    return best


def test_disabled_faults_are_free(recorded, emit_result):
    program, trace = recorded
    assert not faults.enabled()  # the disabled measurements must be honest

    _run(program, trace)  # warm lazy init so call counts are steady-state
    calls = {
        "baseline": _total_calls(_run, program, trace),
        "disabled": _total_calls(_run, program, trace),
        "armed_noop": _total_calls(_run_armed_noop, program, trace),
    }
    disabled_overhead = calls["disabled"] / calls["baseline"] - 1.0
    armed_noop_overhead = calls["armed_noop"] / calls["baseline"] - 1.0

    best = _interleaved_best_of(
        [("baseline", _run), ("disabled", _run),
         ("armed_noop", _run_armed_noop)],
        program, trace)

    events = len(trace)
    record = {
        "events": events,
        "detectors": DETECTORS,
        "rounds": ROUNDS,
        "calls": calls,
        "disabled_overhead": round(disabled_overhead, 6),
        "armed_noop_overhead": round(armed_noop_overhead, 6),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "wall_clock": {
            name: {
                "seconds": round(seconds, 6),
                "events_per_sec": round(events / seconds),
            }
            for name, seconds in sorted(best.items())
        },
        "wall_clock_disabled_overhead":
            round(best["disabled"] / best["baseline"] - 1.0, 4),
    }

    from repro.harness import bench_gate
    record = bench_gate.write_artefact(
        os.path.join(OUT_DIR, "BENCH_faults.json"), record)
    emit_result("faults_overhead", json.dumps(record, indent=2))

    # the tight bound, at machine precision: no plan armed -> the exact
    # same work as the unhardened engine, call for call
    assert calls["disabled"] == calls["baseline"], record
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, record
    # an armed empty plan pays a per-run constant, never per-event work
    assert calls["armed_noop"] - calls["baseline"] < events / 10, record
    assert armed_noop_overhead < MAX_DISABLED_OVERHEAD, record
    # loose wall-clock gate against gross regressions
    assert record["wall_clock_disabled_overhead"] < \
        MAX_WALL_CLOCK_OVERHEAD, record


def test_armed_plan_results_match_unarmed(recorded):
    """Arming an empty plan must not change a single report: same
    violations, no degradation, no quarantine."""
    program, trace = recorded
    clean = _run(program, trace)
    armed = _run_armed_noop(program, trace)
    assert not armed.degraded and not armed.failures
    for name in DETECTORS:
        assert armed.report(name).dynamic_count == \
            clean.report(name).dynamic_count
