"""Table 2: the paper's main results (paper §7, Table 2).

Regenerates all five rows -- Apache buggy/bug-free, MySQL buggy/bug-free,
PgSQL -- with both detectors on identical executions, and asserts the
result *shape* the reproduction must preserve (absolute per-Minst rates
differ because the substitute machine has no server code between shared
accesses; see DESIGN.md §5):

1. zero apparent false negatives on the buggy rows;
2. both detectors find both bugs;
3. bug-free MySQL: SVD fewer static and dynamic FPs than FRD;
4. PgSQL crossover: SVD reports more than FRD, at a low absolute rate;
5. the a-posteriori log is populated where the paper used it.
"""

from repro.harness.table2 import render_table2, table2_rows


def test_table2(benchmark, emit_result):
    rows = benchmark.pedantic(table2_rows, kwargs={"max_steps": 400_000},
                              rounds=1, iterations=1)
    text = render_table2(rows)
    lines = [text, ""]
    for row in rows:
        lines.append(
            f"{row.program}: SVD found the bug in {row.bugs_found_svd}"
            f"/{row.segments} segments, FRD in {row.bugs_found_frd}"
            f"/{row.segments}")
    emit_result("table2", "\n".join(lines))

    by_name = {r.program: r for r in rows}

    # (1) + (2): no apparent false negatives; both detectors find the bugs
    for name in ("Apache (buggy)", "MySQL (buggy)"):
        row = by_name[name]
        assert row.apparent_fn == 0, name
        assert row.bugs_found_svd == row.segments, name
        assert row.bugs_found_frd == row.segments, name

    # (3): bug-free MySQL, SVD below FRD on both FP axes
    mysql = by_name["MySQL (bug-free)"]
    assert mysql.svd_static_fp < mysql.frd_static_fp
    assert mysql.svd_dynamic_fp < mysql.frd_dynamic_fp

    # (4): the PgSQL crossover
    pgsql = by_name["PgSQL"]
    assert pgsql.svd_static_fp > pgsql.frd_static_fp
    assert pgsql.frd_dynamic_fp == 0
    # low absolute rate: far below the buggy rows' FRD race density
    apache = by_name["Apache (buggy)"]
    frd_race_rate = (apache.runs[0].frd.dynamic_tp * 1e6
                     / apache.runs[0].instructions)
    assert pgsql.svd_dynfp_per_million() < frd_race_rate

    # (5): a-posteriori examinations recorded for the MySQL rows
    assert by_name["MySQL (buggy)"].posteriori_examinations > 0
