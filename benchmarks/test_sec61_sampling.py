"""§6.1 sampling methodology: long executions via sampled segments.

"We overcome this problem by fast-forwarding and sampling the simulated
executions ... We sampled long executions (10 seconds in the steady
state) to study if the long executions make SVD report more false
positives."  We run a long steady-state OLTP execution, sample evenly
spaced segments, and verify the methodology's premise: per-segment
static sites stay flat (code-size bound) and the sampled dynamic rate
matches the full-run rate.
"""

import pytest

from repro.harness import (SegmentSampler, evenly_spaced_windows,
                           render_table, run_workload)
from repro.machine import RandomScheduler
from repro.workloads import pgsql_oltp


def sample_run():
    workload = pgsql_oltp(txns=120)
    total = 45_000
    windows = evenly_spaced_windows(total, segments=6, segment_length=4000)
    sampler = SegmentSampler(workload.program, windows)
    machine = workload.make_machine(
        RandomScheduler(seed=5, switch_prob=0.5), observers=[sampler])
    machine.run(max_steps=60_000)
    full = run_workload(pgsql_oltp(txns=120), seed=5, switch_prob=0.5,
                        max_steps=60_000, run_frd=False)
    return sampler, full


def test_sampling_methodology(benchmark, emit_result):
    sampler, full = benchmark.pedantic(sample_run, rounds=1, iterations=1)

    rows = [(i, s.start_seq, s.instructions, s.static_reports,
             s.dynamic_reports)
            for i, s in enumerate(sampler.segments)]
    rows.append(("union/full", "-", full.instructions,
                 f"{sampler.union_static_reports()} / {full.svd.static_fp}",
                 f"{sampler.total_dynamic_reports()} "
                 f"/ {full.svd.dynamic_total}"))
    text = render_table(
        ["segment", "start", "insts", "staticFP", "dynFP"],
        rows, title="Sec 6.1: sampled segments vs full execution (PgSQL)")
    emit_result("sec61_sampling", text)

    assert len(sampler.segments) >= 4
    # static sites are bounded by exercised code, so the union over
    # segments stays near the per-segment counts
    per_segment = [s.static_reports for s in sampler.segments]
    assert sampler.union_static_reports() <= max(per_segment) + 4
    # sampled dynamic rate approximates the full-run rate within 3x
    full_rate = full.svd.dynamic_total / full.instructions
    sampled_rate = (sampler.total_dynamic_reports()
                    / max(1, sampler.total_instructions()))
    if full_rate > 0:
        assert sampled_rate < full_rate * 3 + 1e-3
        assert sampled_rate > full_rate / 3 - 1e-3
