"""Ablation: Skipper control dependences on/off (paper §4.2).

SVD consults the control-dependence stack when checking a store: a store
guarded by a racy branch is checked against the CU that computed the
branch condition.  The bench uses a guarded-update pattern where the
*only* connection between the racy read and the subsequent store is
control flow -- turning the stack off makes that detection disappear.
"""

import pytest

from repro.core import OnlineSVD, SvdConfig
from repro.harness import render_table
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler

#: the store in the then-block has no data dependence on `ready`; only
#: the branch connects them
SOURCE = """
shared int ready = 0;
shared int work_done = 0;

thread setter(int n) {
    int i = 0;
    while (i < n) {
        ready = 1;
        ready = 0;
        i = i + 1;
    }
}

thread guarded(int n) {
    int i = 0;
    while (i < n) {
        if (ready == 1) {
            work_done = work_done + 1;
        }
        i = i + 1;
    }
}
"""


def measure(use_control_deps, seeds=range(6)):
    program = compile_source(SOURCE)
    total = 0
    sites = set()
    for seed in seeds:
        svd = OnlineSVD(program, SvdConfig(use_control_deps=use_control_deps))
        machine = Machine(program, [("setter", (25,)), ("guarded", (25,))],
                          scheduler=RandomScheduler(seed=seed,
                                                    switch_prob=0.6),
                          observers=[svd])
        machine.run()
        total += svd.report.dynamic_count
        for v in svd.report:
            if program.name_of_address(v.address) == "ready":
                sites.add(program.locs[v.loc].text)
    return total, sorted(sites)


def test_control_deps_ablation(benchmark, emit_result):
    with_ctrl = benchmark.pedantic(measure, args=(True,),
                                   rounds=1, iterations=1)
    without_ctrl = measure(False)

    text = render_table(
        ["config", "reports on `ready`", "sites"],
        [("control deps ON (paper)", with_ctrl[0],
          "; ".join(with_ctrl[1]) or "-"),
         ("control deps OFF", without_ctrl[0],
          "; ".join(without_ctrl[1]) or "-")],
        title="Ablation: Skipper control-dependence stack")
    emit_result("ablation_control_deps", text)

    # only the control-dependence stack can tie the guarded store to the
    # racy branch condition
    assert with_ctrl[0] > 0
    assert without_ctrl[0] == 0
