"""BER demo: avoiding an unknown bug at runtime (paper §1.1, scenario I).

The Apache log workload corrupts its access log under racy
interleavings.  Without any knowledge of the bug, SVD + backward error
recovery keeps the service correct: on each detected serializability
violation the machine rolls back to a checkpoint taken before the broken
region began and re-executes serially for a recovery window.

Run:  python examples/ber_recovery.py
"""

from repro.ber import BerController
from repro.machine import RandomScheduler
from repro.workloads import apache_log


def main() -> None:
    workload = apache_log(writers=3, requests=12)

    # find a seed whose unprotected run corrupts the log
    for seed in range(10):
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.5))
        machine.run()
        outcome = workload.validate(machine)
        if outcome.errors:
            break
    print(f"unprotected run (seed {seed}): {outcome.detail}")
    print("the server silently served a corrupted access log.\n")

    controller = BerController(
        workload.program, workload.threads,
        RandomScheduler(seed=seed, switch_prob=0.5),
        checkpoint_interval=400, recovery_window=1500)
    result = controller.run(max_steps=2_000_000)
    protected = workload.validate(controller.machine)

    print(f"protected run   (seed {seed}): {protected.detail}")
    print(f"rollbacks performed : {result.rollbacks}")
    print(f"work thrown away    : {result.wasted_steps} steps "
          f"({result.overhead_fraction:.1%} of total)")
    print()
    if protected.errors == 0 and result.rollbacks > 0:
        print("SVD + BER avoided the (unknown) bug: every time the broken")
        print("interleaving began, the detector fired, the machine rolled")
        print("back past the region's start, and the serial re-execution")
        print("could not reproduce the race.")
    else:
        print("recovery incomplete on this seed -- try another")


if __name__ == "__main__":
    main()
