"""Quickstart: detect a serializability violation in 30 lines.

A classic lost-update race: two threads increment a shared counter
without a lock.  We run the program on the deterministic machine with
the online SVD attached, then print what the detector saw.

Run:  python examples/quickstart.py
"""

from repro.core import OnlineSVD
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler

SOURCE = """
shared int counter = 0;

thread worker(int n) {
    int i = 0;
    while (i < n) {
        int c = counter;     // read
        counter = c + 1;     // modify-write: must be atomic with the read
        i = i + 1;
    }
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    detector = OnlineSVD(program)
    machine = Machine(
        program,
        threads=[("worker", (50,)), ("worker", (50,))],
        scheduler=RandomScheduler(seed=42, switch_prob=0.4),
        observers=[detector],
    )
    machine.run()

    print(f"final counter: {machine.read_global('counter')} "
          f"(100 if the increments had been atomic)")
    print(f"instructions executed: {detector.instructions}")
    print(f"computational units inferred: {detector.cus_created}")
    print()
    print(detector.report.describe())
    print()
    if detector.report.dynamic_count:
        print("SVD detected the erroneous execution: the counter CU's input"
              " was overwritten by the other thread before the CU finished.")
    else:
        print("this seed interleaved benignly; try another seed")


if __name__ == "__main__":
    main()
