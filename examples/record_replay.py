"""Scenario II end-to-end: record in production, diagnose in the lab.

The paper's post-mortem story assumes a deterministic recorder (their
Flight Data Recorder, reference [38]): production captures a tiny
schedule recording of the failing run; later, the lab replays it --
bit-for-bit -- with the heavyweight detector attached.

This example records a crashing MySQL prepared-query run to a file
(~a few KB: just the interleaving), "ships" it, replays it under SVD and
walks the a-posteriori log to the root cause.

Run:  python examples/record_replay.py
"""

import os
import tempfile

from repro.core import OnlineSVD
from repro.machine import (RandomScheduler, Recording, record_execution,
                           replay_execution)
from repro.workloads import mysql_prepared


def main() -> None:
    workload = mysql_prepared(queries=5, think=200)

    # --- production: run with only the lightweight recorder ----------------
    for seed in range(12):
        machine, recording = record_execution(
            workload.program, workload.threads,
            RandomScheduler(seed=seed, switch_prob=0.4))
        if machine.crashed:
            break
    assert machine.crashed, "no crash captured; try more seeds"
    path = os.path.join(tempfile.gettempdir(), "mysql-crash.rec")
    recording.save(path)
    size = os.path.getsize(path)
    print(f"production captured a crash (seed {seed}) in "
          f"{recording.steps} steps")
    print(f"recording shipped: {path} ({size} bytes -- the schedule only, "
          f"no memory contents)\n")

    # --- lab: replay the identical execution under the detector ------------
    loaded = Recording.load(path)
    detector = OnlineSVD(workload.program)
    replay = replay_execution(workload.program, loaded,
                              observers=[detector])
    assert [c.pc for c in replay.crashes] == [c.pc for c in machine.crashes]
    print(f"lab replayed {replay.steps} steps; the crash reproduced at the "
          f"same instruction.")
    print(f"online reports: {detector.report.dynamic_count}; "
          f"a-posteriori log: {len(detector.log.entries)} triples\n")

    print(detector.log.describe(limit=6))
    names = [workload.program.name_of_address(a)
             for a in detector.log.suspicious_addresses()]
    culprits = [n for n in names if "field" in n or "used" in n]
    print(f"\nroot cause candidates: {culprits[:3]}")


if __name__ == "__main__":
    main()
