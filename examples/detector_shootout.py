"""Compare five detectors on your own MiniSMP program.

One :class:`repro.engine.DetectorEngine` runs SVD (online), offline SVD,
the Frontier Race Detector, Eraser-style lockset and the Atomizer-style
atomicity checker over a *single* execution of a user-editable program
-- the engine records the run once and replays the recording for the
trace-side detectors -- plus the precise conflict-graph serializability
verdict as ground truth.

Run:  python examples/detector_shootout.py
"""

from repro.engine import DetectorEngine
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.pdg import build_dpdg, reference_cu_partition
from repro.serializability import is_serializable

# -- edit me -----------------------------------------------------------------
SOURCE = """
shared int balance = 100;
shared int audit_total = 0;
lock account;

thread depositor(int n) {
    int i = 0;
    while (i < n) {
        acquire(account);
        int b = balance;
        balance = b + 10;
        release(account);
        i = i + 1;
    }
}

thread auditor(int n) {
    int i = 0;
    while (i < n) {
        // BUG: reads the balance without the account lock and uses the
        // stale value in a later update
        int snapshot = balance;
        audit_total = audit_total + snapshot;
        i = i + 1;
    }
}
"""
THREADS = [("depositor", (10,)), ("auditor", (10,))]
SEED = 7
DETECTORS = ["svd", "offline", "frd", "lockset", "atomizer"]
LABELS = {
    "svd": "SVD (online)",
    "offline": "SVD (offline)",
    "frd": "FRD happens-before",
    "lockset": "lockset (Eraser)",
    "atomizer": "atomicity (Atomizer)",
}
# ----------------------------------------------------------------------------


def main() -> None:
    program = compile_source(SOURCE)
    machine = Machine(program, THREADS,
                      scheduler=RandomScheduler(seed=SEED, switch_prob=0.5))
    engine = DetectorEngine(program, DETECTORS)
    result = engine.run_machine(machine)
    trace = result.trace

    print(f"executed {machine.seq} instructions; "
          f"balance={machine.read_global('balance')}, "
          f"audit_total={machine.read_global('audit_total')}")
    print(f"({result.stats.stream_passes} stream passes for "
          f"{len(DETECTORS)} detectors)\n")
    width = max(len(v) for v in LABELS.values())
    for name in DETECTORS:
        report = result.report(name)
        print(f"{LABELS[name]:{width}s} : {report.dynamic_count:4d} dynamic, "
              f"{report.static_count:2d} static")
    print()

    pdg = build_dpdg(trace)
    parts = {tid: reference_cu_partition(pdg, tid)
             for tid in range(len(THREADS))}
    verdict = is_serializable(trace, parts)
    print(f"ground truth (CU conflict graph): "
          f"{'serializable' if verdict.serializable else 'NOT serializable'}")
    if verdict.cycle:
        print(f"  witness cycle through CUs: {verdict.cycle}")
    print()
    print(result.report("svd").describe(limit=8))


if __name__ == "__main__":
    main()
