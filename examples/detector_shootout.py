"""Compare four detectors on your own MiniSMP program.

Runs SVD (online), offline SVD, the Frontier Race Detector, Eraser-style
lockset and the Atomizer-style atomicity checker on one execution of a
user-editable program, plus the precise conflict-graph serializability
verdict as ground truth.

Run:  python examples/detector_shootout.py
"""

from repro.core import OfflineSVD, OnlineSVD
from repro.detectors import (AtomizerDetector, FrontierRaceDetector,
                             LocksetDetector)
from repro.lang import compile_source
from repro.machine import Machine, RandomScheduler
from repro.pdg import build_dpdg, reference_cu_partition
from repro.serializability import is_serializable
from repro.trace import TraceRecorder

# -- edit me -----------------------------------------------------------------
SOURCE = """
shared int balance = 100;
shared int audit_total = 0;
lock account;

thread depositor(int n) {
    int i = 0;
    while (i < n) {
        acquire(account);
        int b = balance;
        balance = b + 10;
        release(account);
        i = i + 1;
    }
}

thread auditor(int n) {
    int i = 0;
    while (i < n) {
        // BUG: reads the balance without the account lock and uses the
        // stale value in a later update
        int snapshot = balance;
        audit_total = audit_total + snapshot;
        i = i + 1;
    }
}
"""
THREADS = [("depositor", (10,)), ("auditor", (10,))]
SEED = 7
# ----------------------------------------------------------------------------


def main() -> None:
    program = compile_source(SOURCE)
    online = OnlineSVD(program)
    recorder = TraceRecorder(program, len(THREADS))
    machine = Machine(program, THREADS,
                      scheduler=RandomScheduler(seed=SEED, switch_prob=0.5),
                      observers=[online, recorder])
    machine.run()
    trace = recorder.trace()

    reports = {
        "SVD (online)": online.report,
        "SVD (offline)": OfflineSVD(program).run(trace).report,
        "FRD happens-before": FrontierRaceDetector(program).run(trace),
        "lockset (Eraser)": LocksetDetector(program).run(trace),
        "atomicity (Atomizer)": AtomizerDetector(program).run(trace),
    }

    print(f"executed {machine.seq} instructions; "
          f"balance={machine.read_global('balance')}, "
          f"audit_total={machine.read_global('audit_total')}\n")
    width = max(len(k) for k in reports)
    for name, report in reports.items():
        print(f"{name:{width}s} : {report.dynamic_count:4d} dynamic, "
              f"{report.static_count:2d} static")
    print()

    pdg = build_dpdg(trace)
    parts = {tid: reference_cu_partition(pdg, tid)
             for tid in range(len(THREADS))}
    verdict = is_serializable(trace, parts)
    print(f"ground truth (CU conflict graph): "
          f"{'serializable' if verdict.serializable else 'NOT serializable'}")
    if verdict.cycle:
        print(f"  witness cycle through CUs: {verdict.cycle}")
    print()
    print(online.report.describe(limit=8))


if __name__ == "__main__":
    main()
