"""Figure 3 demo: from symptom to root cause with deterministic replay
and the a-posteriori log.

The MySQL prepared-query bug crashes the server non-deterministically;
its root cause (two mistakenly-shared variables) was unknown before SVD.
This example reproduces the paper's §1.1 scenario II workflow:

1. run the server until a crash manifests, recording the schedule
   (the "deterministic recorder");
2. replay the identical execution with the detector attached;
3. examine the (s, rw, lw) communication-triple log, which names the
   mistakenly-shared variables -- the root cause;
4. apply the fix (make them thread-local) and show the crash is gone.

Run:  python examples/postmortem_debugging.py
"""

from repro.core import OnlineSVD, render_cu_timeline
from repro.machine import RandomScheduler, ReplayScheduler
from repro.trace import TraceQuery, TraceRecorder
from repro.workloads import mysql_prepared


def main() -> None:
    workload = mysql_prepared()

    # 1. capture a failing execution with the deterministic recorder
    for seed in range(12):
        machine = workload.make_machine(
            RandomScheduler(seed=seed, switch_prob=0.4),
            record_schedule=True)
        machine.run()
        if machine.crashed:
            break
    crash = machine.crashes[0]
    loc = workload.program.locs[crash.loc]
    print(f"captured a crash with seed {seed}: thread {crash.tid} "
          f"trapped at {{{loc}}}")
    print("symptom only -- the root cause is not visible from the crash "
          "site.\n")

    # 2. replay the identical execution with SVD + a trace recorder
    detector = OnlineSVD(workload.program)
    recorder = TraceRecorder(workload.program, len(workload.threads))
    replay = workload.make_machine(
        ReplayScheduler(machine.recorded_schedule),
        observers=[detector, recorder])
    replay.run()
    assert len(replay.crashes) == len(machine.crashes), "replay diverged"
    print(f"replayed {replay.steps} steps deterministically; online SVD "
          f"reported {detector.report.dynamic_count} violation(s).")
    print("(the paper expects weak online coverage here: the region reads "
          "back variables it wrote, so CUs are cut smaller than the "
          "atomic region)\n")

    # 3. a-posteriori examination of the communication log
    print(detector.log.describe(limit=8))
    print()
    suspicious = detector.log.suspicious_addresses()
    names = [workload.program.name_of_address(a) for a in suspicious]
    print(f"variables implicated, most-overwritten first: {names[:4]}")
    culprits = [n for n in names
                if "field_query_id" in n or "used" in n]
    assert culprits, "the log must implicate the mistakenly-shared fields"
    print(f"=> root cause: {culprits[0].split('[')[0]} (and friends) are "
          f"shared between sessions but used as if thread-local.\n")

    # 3b. drill into the raw trace: who wrote used_fields, under which
    # locks, interleaved how?
    query = TraceQuery(recorder.trace())
    print(query.render_history("used_fields", limit=8))
    print()
    print(render_cu_timeline(detector.log, workload.program,
                             max_cus_per_thread=4))
    print()

    # 4. the fix
    fixed = mysql_prepared(fixed=True)
    for check_seed in range(6):
        machine = fixed.make_machine(
            RandomScheduler(seed=check_seed, switch_prob=0.4))
        machine.run()
        assert not machine.crashed
    print("after making them thread-local, 6/6 seeds run crash-free.")


if __name__ == "__main__":
    main()
