"""Figure 1 demo: benign data races that SVD does not report.

MySQL's table-locking code updates ``tot_lock`` under a lock but reads
it elsewhere without synchronization.  The races are harmless: shared
tables are locked before use, so the racy predicate never fires.  A
happens-before race detector reports them anyway (false positives a
programmer must triage); SVD observes that every computational unit
serialises and stays silent.

Run:  python examples/mysql_benign_races.py
"""

from repro.detectors import LocksetDetector, frontier_races
from repro.harness import run_workload
from repro.machine import RandomScheduler
from repro.trace import TraceRecorder
from repro.workloads import mysql_tablelock


def main() -> None:
    workload = mysql_tablelock()
    result = run_workload(workload, seed=1, switch_prob=0.5)

    print(f"workload : {workload.description}")
    print(f"outcome  : {result.outcome.detail} "
          f"({'CORRECT' if result.outcome.errors == 0 else 'BROKEN'})")
    print()
    print(f"FRD (happens-before) : {result.frd.dynamic_total:4d} dynamic "
          f"race reports at {result.frd.static_fp} static sites "
          f"-- ALL false positives")
    print(f"SVD                  : {result.svd.dynamic_total:4d} reports")
    print()

    if result.frd_report.dynamic_count:
        program = result.frd_report.program
        print("the statements FRD flags (every one benign):")
        for key in sorted(result.frd_report.static_keys):
            _kind, loc = key
            print(f"  {program.locs[loc]}")
    print()
    print("SVD avoids these false positives because the execution's CUs")
    print("are serializable: the racy read never feeds a store that would")
    print("expose the broken window (the guarded branch never executes).")

    # bonus: the lockset algorithm (Eraser) also flags the variable
    recorder = TraceRecorder(workload.program, len(workload.threads))
    machine = workload.make_machine(
        RandomScheduler(seed=1, switch_prob=0.5), observers=[recorder])
    machine.run()
    trace = recorder.trace()
    lockset = LocksetDetector(workload.program).run(trace)
    frontier = frontier_races(trace)
    print()
    print(f"for reference: Eraser-style lockset reports "
          f"{lockset.dynamic_count} site(s); pass-1 frontier analysis "
          f"finds {len(frontier)} tightest racy pairs to annotate.")


if __name__ == "__main__":
    main()
