"""Figure 2 demo: the Apache buffered-log bug, detected online.

Apache 2.0.48's log_config module buffers access-log records in shared
memory; the memcpy into the buffer and the index update are not guarded
by a critical section.  This example:

1. runs the buggy workload and shows the silent log corruption;
2. shows SVD detecting the serializability violation online, at the
   exact statements of the paper's Figure 2;
3. compares against the FRD race detector on the identical execution
   (far more dynamic reports for the same bug);
4. runs the patched workload and shows both detectors silent.

Run:  python examples/apache_log_corruption.py
"""

from repro.detectors import FrontierRaceDetector
from repro.harness import run_workload
from repro.workloads import apache_log


def describe(result, title):
    print(f"--- {title} ---")
    print(f"log integrity : {result.outcome.detail}")
    print(f"SVD           : {result.svd.dynamic_total} dynamic reports "
          f"({result.svd.static_tp + result.svd.static_fp} static sites)")
    print(f"FRD           : {result.frd.dynamic_total} dynamic reports "
          f"({result.frd.static_tp + result.frd.static_fp} static sites)")
    if result.svd_report.dynamic_count:
        print()
        print(result.svd_report.describe(limit=6))
    print()


def main() -> None:
    # find a seed where the corruption manifests (it is timing-dependent)
    for seed in range(10):
        buggy = run_workload(apache_log(), seed=seed, switch_prob=0.5)
        if buggy.outcome.manifested:
            break
    describe(buggy, f"buggy Apache, seed {seed}")
    assert buggy.svd.found_bug, "SVD must catch the manifested corruption"

    ratio = buggy.frd.dynamic_total / max(1, buggy.svd.dynamic_total)
    print(f"FRD produced {ratio:.0f}x the dynamic reports of SVD for the "
          f"same bug -- each dynamic report would cost one BER rollback.")
    print()

    fixed = run_workload(apache_log(fixed=True), seed=seed, switch_prob=0.5)
    describe(fixed, "patched Apache (lock around the buffered write)")


if __name__ == "__main__":
    main()
